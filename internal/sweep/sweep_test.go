package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sharebackup/internal/obs"
)

// noisyShard is a representative shard function: it draws from the shard's
// substream and burns a scheduling-dependent amount of time, so any
// order-dependence in the engine would show up as a fingerprint mismatch.
func noisyShard(_ context.Context, sh Shard) (float64, error) {
	rng := rand.New(rand.NewSource(sh.Seed))
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += rng.Float64()
	}
	if sh.Index%3 == 0 {
		time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
	}
	return sum, nil
}

func TestSubSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed(42, %d) == SubSeed(42, %d) == %d", i, prev, s)
		}
		seen[s] = i
		if s != SubSeed(42, i) {
			t.Fatalf("SubSeed(42, %d) not deterministic", i)
		}
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("different roots produced the same substream seed")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var want uint64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 13} {
		res, err := Run(context.Background(), Config{
			Name: "det", Shards: 40, Seed: 7, Workers: workers,
			Registry: obs.NewRegistry(), Bus: &obs.Bus{},
		}, noisyShard)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp, err := Fingerprint(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("workers=%d: fingerprint %x != %x — results depend on worker count", workers, fp, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Shards: 0}, noisyShard); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := Run[int](context.Background(), Config{Shards: 1}, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	_, err := Run(context.Background(), Config{
		Name: "err", Shards: 20, Workers: 4,
		Registry: obs.NewRegistry(), Bus: &obs.Bus{},
	}, func(_ context.Context, sh Shard) (int, error) {
		if sh.Index == 11 {
			return 0, boom
		}
		return sh.Index, nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard 11") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want shard-11 boom", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(ctx, Config{
			Name: "cancel", Shards: 10000, Workers: 2,
			Registry: obs.NewRegistry(), Bus: &obs.Bus{},
		}, func(c context.Context, sh Shard) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return sh.Index, nil
		})
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the sweep")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("%d shards ran after cancellation", n)
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	cfg := Config{
		Name: "resume", Shards: 30, Seed: 3, Workers: 4,
		Checkpoint: path, Registry: obs.NewRegistry(), Bus: &obs.Bus{},
	}

	// Uninterrupted reference run (no checkpoint) for the golden fingerprint.
	ref, err := Run(context.Background(), Config{
		Name: "resume", Shards: 30, Seed: 3, Workers: 1,
		Registry: obs.NewRegistry(), Bus: &obs.Bus{},
	}, noisyShard)
	if err != nil {
		t.Fatal(err)
	}
	wantFP, _ := Fingerprint(ref)

	// First attempt dies partway through: shards fail once 12 have run.
	var ran atomic.Int64
	_, err = Run(context.Background(), cfg, func(c context.Context, sh Shard) (float64, error) {
		if ran.Add(1) > 12 {
			return 0, fmt.Errorf("killed")
		}
		return noisyShard(c, sh)
	})
	if err == nil {
		t.Fatal("interrupted run reported success")
	}

	// Resume must re-run only the missing shards and merge identically.
	resumeCfg := cfg
	resumeCfg.Resume = true
	var reran atomic.Int64
	var rerunFirst atomic.Int64
	rerunFirst.Store(-1)
	res, err := Run(context.Background(), resumeCfg, func(c context.Context, sh Shard) (float64, error) {
		reran.Add(1)
		rerunFirst.CompareAndSwap(-1, int64(sh.Index))
		return noisyShard(c, sh)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(reran.Load()); got >= 30 || got == 0 {
		t.Fatalf("resume re-ran %d shards, want only the missing ones (0 < n < 30)", got)
	}
	fp, _ := Fingerprint(res)
	if fp != wantFP {
		t.Fatalf("resumed fingerprint %x != uninterrupted %x", fp, wantFP)
	}

	// A second resume re-runs nothing and still matches.
	res, err = Run(context.Background(), resumeCfg, func(c context.Context, sh Shard) (float64, error) {
		t.Errorf("shard %d re-ran on a complete checkpoint", sh.Index)
		return noisyShard(c, sh)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp, _ := Fingerprint(res); fp != wantFP {
		t.Fatalf("complete-checkpoint fingerprint %x != %x", fp, wantFP)
	}
}

func TestCheckpointToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	cfg := Config{
		Name: "trunc", Shards: 6, Seed: 1, Workers: 1,
		Checkpoint: path, Registry: obs.NewRegistry(), Bus: &obs.Bus{},
	}
	if _, err := Run(context.Background(), cfg, noisyShard); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: chop the last line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	resumeCfg := cfg
	resumeCfg.Resume = true
	var reran atomic.Int64
	if _, err := Run(context.Background(), resumeCfg, func(c context.Context, sh Shard) (float64, error) {
		reran.Add(1)
		return noisyShard(c, sh)
	}); err != nil {
		t.Fatal(err)
	}
	if got := reran.Load(); got != 1 {
		t.Fatalf("re-ran %d shards after truncation, want exactly the chopped one", got)
	}
}

func TestCheckpointHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	base := Config{
		Name: "hdr", Shards: 4, Seed: 1, Workers: 1,
		Checkpoint: path, Registry: obs.NewRegistry(), Bus: &obs.Bus{},
	}
	if _, err := Run(context.Background(), base, noisyShard); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.Shards = 5 },
		func(c *Config) { c.Name = "other" },
	} {
		cfg := base
		cfg.Resume = true
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, noisyShard); err == nil {
			t.Errorf("resume with mutated config %+v accepted a foreign checkpoint", cfg)
		}
	}
}

func TestProgressGaugesAndEvents(t *testing.T) {
	reg := obs.NewRegistry()
	bus := &obs.Bus{}
	ring := obs.NewRing(128)
	bus.Attach(ring)
	if _, err := Run(context.Background(), Config{
		Name: "prog", Shards: 8, Seed: 1, Workers: 2, TrialsPerShard: 10,
		Registry: reg, Bus: bus,
	}, noisyShard); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("sweep.shards_total").Value(); got != 8 {
		t.Errorf("shards_total = %d, want 8", got)
	}
	if got := reg.Gauge("sweep.shards_done").Value(); got != 8 {
		t.Errorf("shards_done = %d, want 8", got)
	}
	evs := ring.Find(obs.KindSweepShardDone)
	if len(evs) != 8 {
		t.Fatalf("got %d shard-done events, want 8", len(evs))
	}
	shards := make(map[uint64]bool)
	for _, ev := range evs {
		if ev.Shard == 0 {
			t.Errorf("event missing shard tag: %v", ev)
		}
		shards[ev.Shard] = true
		if ev.Detail != "prog" {
			t.Errorf("event names sweep %q, want prog", ev.Detail)
		}
	}
	if len(shards) != 8 {
		t.Errorf("events carry %d distinct shard tags, want 8", len(shards))
	}
}

func TestShardEventJSONRoundTrip(t *testing.T) {
	ev := obs.NewEvent(obs.KindSweepShardDone, 5*time.Millisecond)
	ev.Shard = 7
	ev.Count = 3
	ev.Detail = "fig1a"
	data, err := ev.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"shard":7`) {
		t.Fatalf("wire form missing shard tag: %s", data)
	}
	var back obs.Event
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Shard != 7 || back.Kind != obs.KindSweepShardDone || back.Detail != "fig1a" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if !strings.Contains(ev.String(), "shard=7") {
		t.Fatalf("String() missing shard tag: %s", ev.String())
	}
}
