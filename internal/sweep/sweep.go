// Package sweep is the experiment sweep engine: it shards a trial space
// (failover trials, Monte-Carlo horizons, coflow-replay scenarios) across a
// worker pool so paper-scale runs use every core, while keeping the results
// bit-identical to a single-threaded run.
//
// Determinism rests on two rules. First, every shard draws randomness from
// its own substream, seeded as SubSeed(rootSeed, shardIndex) — a pure
// function of the sweep's root seed and the shard's position, never of
// worker count or goroutine scheduling. Second, Run returns the per-shard
// results in shard-index order, so callers merge by folding a slice whose
// layout does not depend on completion order.
//
// Sweeps checkpoint to a JSONL file (one line per completed shard, flushed
// as it finishes), so a killed run resumed with Resume re-executes only the
// missing shards and still merges to the same output. Progress is published
// through the obs bus (one shard-tagged KindSweepShardDone event per shard)
// and registry (sweep.shards_done / sweep.shards_total / sweep.trials_per_sec
// / sweep.eta_ms), so /varz and -trace observe a sweep like any other
// subsystem.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sharebackup/internal/obs"
)

// Shard is one unit of a sweep's trial space.
type Shard struct {
	// Index is the shard's 0-based position in the sweep.
	Index int
	// Seed is the shard's RNG substream seed, SubSeed(rootSeed, Index).
	// Shard functions must draw all their randomness from it.
	Seed int64

	// tag is the shard's process-unique obs tag, assigned by Run.
	tag uint64
}

// tagBase allocates each Run a disjoint block of shard tags, so traces that
// interleave several sweeps (e.g. one per circuit technology) never reuse a
// tag — tools like sbtap rely on the tag to tell private-bus event streams
// apart. Tags are a tracing identity, not part of any result, so the global
// counter does not affect determinism.
var tagBase atomic.Uint64

// ID returns the 1-based shard tag stamped on obs events (0 = untagged),
// unique across every sweep in the process.
func (s Shard) ID() uint64 {
	if s.tag != 0 {
		return s.tag
	}
	return uint64(s.Index) + 1
}

// SubSeed derives a shard's RNG substream seed from the sweep's root seed
// with a splitmix64 finalizer, so substreams are statistically independent
// and the mapping depends only on (root, index).
func SubSeed(root int64, index int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Config parameterizes one sweep.
type Config struct {
	// Name identifies the sweep in checkpoints, events, and progress. A
	// resumed run must use the same Name.
	Name string
	// Shards is the trial-space size: fn runs once per index in [0, Shards).
	Shards int
	// Seed is the root seed shard substreams derive from.
	Seed int64
	// Workers sizes the worker pool; 0 or negative means GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
	// TrialsPerShard weights the trials/sec progress gauge (default 1).
	TrialsPerShard int
	// Checkpoint, when non-empty, is the JSONL file completed shards are
	// appended to as they finish. Without Resume an existing file is
	// overwritten.
	Checkpoint string
	// Resume loads the checkpoint first and re-runs only missing shards.
	// The file's header must match Name/Shards/Seed.
	Resume bool
	// Bus receives one shard-tagged KindSweepShardDone event per completed
	// shard (nil = obs.Default).
	Bus *obs.Bus
	// Registry receives the progress gauges (nil = obs.DefaultRegistry).
	// Gauge names are process-global; run one sweep at a time per registry
	// if you scrape them.
	Registry *obs.Registry
}

// Run executes fn over every shard on a worker pool and returns the results
// in shard-index order. fn must be safe for concurrent invocation across
// distinct shards and must take all randomness from its Shard's Seed. The
// first shard error cancels the rest and is returned; a canceled ctx returns
// ctx.Err(). With checkpointing enabled, T must round-trip through JSON.
func Run[T any](ctx context.Context, cfg Config, fn func(context.Context, Shard) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil shard function")
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("sweep: Shards=%d must be positive", cfg.Shards)
	}
	if cfg.Name == "" {
		cfg.Name = "sweep"
	}
	if cfg.TrialsPerShard <= 0 {
		cfg.TrialsPerShard = 1
	}
	bus := cfg.Bus
	if bus == nil {
		bus = obs.Default
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.DefaultRegistry
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}

	results := make([]T, cfg.Shards)
	skip := make([]bool, cfg.Shards)
	resumed := 0
	var ckpt *checkpointWriter
	if cfg.Checkpoint != "" {
		hdr := checkpointHeader{Sweep: cfg.Name, Shards: cfg.Shards, Seed: cfg.Seed, Version: checkpointVersion}
		var prior map[int]json.RawMessage
		if cfg.Resume {
			var err error
			prior, err = loadCheckpoint(cfg.Checkpoint, hdr)
			if err != nil {
				return nil, err
			}
			for i, raw := range prior {
				if err := json.Unmarshal(raw, &results[i]); err != nil {
					return nil, fmt.Errorf("sweep: checkpoint %s shard %d: %w", cfg.Checkpoint, i, err)
				}
				skip[i] = true
			}
			resumed = len(prior)
		}
		var err error
		ckpt, err = openCheckpoint(cfg.Checkpoint, hdr, prior)
		if err != nil {
			return nil, err
		}
		defer ckpt.close()
	}

	base := tagBase.Add(uint64(cfg.Shards)) - uint64(cfg.Shards)
	prog := newProgress(cfg, bus, reg, resumed)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Shards {
					return
				}
				if skip[i] {
					continue
				}
				if runCtx.Err() != nil {
					return
				}
				sh := Shard{Index: i, Seed: SubSeed(cfg.Seed, i), tag: base + uint64(i) + 1}
				res, err := fn(runCtx, sh)
				if err != nil {
					fail(fmt.Errorf("sweep: %s shard %d: %w", cfg.Name, i, err))
					return
				}
				results[i] = res
				if ckpt != nil {
					if err := ckpt.write(i, res); err != nil {
						fail(err)
						return
					}
				}
				prog.complete(sh)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// progress publishes shard completions to the registry gauges and the bus.
type progress struct {
	cfg   Config
	bus   *obs.Bus
	start time.Time

	mu       sync.Mutex
	done     int // completed this run (excludes resumed shards)
	resumed  int
	total    *obs.Gauge
	doneG    *obs.Gauge
	tps      *obs.Gauge
	eta      *obs.Gauge
	trialsPS *obs.Gauge
}

func newProgress(cfg Config, bus *obs.Bus, reg *obs.Registry, resumed int) *progress {
	p := &progress{
		cfg: cfg, bus: bus, start: time.Now(), resumed: resumed,
		total: reg.Gauge("sweep.shards_total"),
		doneG: reg.Gauge("sweep.shards_done"),
		tps:   reg.Gauge("sweep.trials_per_sec"),
		eta:   reg.Gauge("sweep.eta_ms"),
	}
	p.total.Set(int64(cfg.Shards))
	p.doneG.Set(int64(resumed))
	p.tps.Set(0)
	p.eta.Set(-1) // unknown until the first shard lands
	return p
}

// complete records one freshly executed shard: gauges first, then the
// shard-tagged bus event carrying the running completion count.
func (p *progress) complete(sh Shard) {
	p.mu.Lock()
	p.done++
	done := p.done + p.resumed
	elapsed := time.Since(p.start)
	var tps float64
	var eta time.Duration
	if elapsed > 0 {
		tps = float64(p.done*p.cfg.TrialsPerShard) / elapsed.Seconds()
		remaining := p.cfg.Shards - done
		eta = time.Duration(float64(elapsed) / float64(p.done) * float64(remaining))
	}
	p.doneG.Set(int64(done))
	p.tps.Set(int64(tps))
	p.eta.Set(eta.Milliseconds())
	p.mu.Unlock()

	if p.bus.Enabled() {
		ev := obs.NewEvent(obs.KindSweepShardDone, elapsed)
		ev.Wall = true
		ev.Shard = sh.ID()
		ev.Count = int32(done)
		ev.Detail = p.cfg.Name
		p.bus.Emit(ev)
	}
}

// Fingerprint hashes any JSON-marshalable value (FNV-1a over its canonical
// encoding). Sweeps use it to assert that merged aggregates are bit-identical
// across worker counts and across checkpoint/resume round trips.
func Fingerprint(v interface{}) (uint64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("sweep: fingerprint: %w", err)
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}
