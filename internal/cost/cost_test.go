package cost

import (
	"math"
	"testing"
)

func TestFatTreeCost(t *testing.T) {
	// k=48, E-DC: 5/4*48^3*60 + 48^3/2*81 = 8,294,400 + 4,478,976.
	b, err := FatTree(48, EDC)
	if err != nil {
		t.Fatal(err)
	}
	if b.SwitchPorts != 8294400 {
		t.Errorf("switch ports = %v, want 8294400", b.SwitchPorts)
	}
	if b.Cables != 4478976 {
		t.Errorf("cables = %v, want 4478976", b.Cables)
	}
	if b.CircuitPorts != 0 {
		t.Error("fat-tree has no circuit switches")
	}
	if b.Total() != 12773376 {
		t.Errorf("total = %v, want 12773376", b.Total())
	}
}

// TestPaperHeadlineNumbers checks the exact claims of Section 5.2: for a
// k=48 fat-tree with n=1, ShareBackup's additional cost is 6.7% (copper) and
// 13.3% (optical) of fat-tree, while Aspen Tree costs 6.5x and 3.2x as much
// as ShareBackup's addition.
func TestPaperHeadlineNumbers(t *testing.T) {
	for _, tc := range []struct {
		p          Prices
		sbRel      float64 // ShareBackup extra / fat-tree
		aspenOverS float64 // Aspen extra / ShareBackup extra
	}{
		{EDC, 0.067, 6.5},
		{ODC, 0.133, 3.2},
	} {
		sb, err := ShareBackupExtra(48, 1, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Relative(sb, 48, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rel-tc.sbRel) > 0.001 {
			t.Errorf("%s: ShareBackup relative cost = %.4f, want %.3f", tc.p.Name, rel, tc.sbRel)
		}
		aspen, err := AspenExtra(48, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := aspen.Total() / sb.Total()
		if math.Abs(ratio-tc.aspenOverS) > 0.1 {
			t.Errorf("%s: Aspen/ShareBackup = %.2f, want %.1f", tc.p.Name, ratio, tc.aspenOverS)
		}
	}
}

func TestOneToOneIsFourTimesFatTree(t *testing.T) {
	// Section 5.2: "the cost of 1:1 backup is 4x that of fat-tree",
	// i.e. its additional cost is 3x the baseline.
	for _, p := range []Prices{EDC, ODC} {
		oo, err := OneToOneExtra(48, p)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Relative(oo, 48, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rel-3.0) > 1e-9 {
			t.Errorf("%s: 1:1 extra relative = %v, want exactly 3", p.Name, rel)
		}
	}
}

func TestShareBackupCheaperThanAspenEvenAtN4(t *testing.T) {
	// Section 5.2: even n=4 (16.7% backup ratio at k=48) keeps
	// ShareBackup cheaper than Aspen Tree.
	for _, p := range []Prices{EDC, ODC} {
		sb, err := ShareBackupExtra(48, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		aspen, err := AspenExtra(48, p)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Total() >= aspen.Total() {
			t.Errorf("%s: ShareBackup(n=4) %v >= Aspen %v", p.Name, sb.Total(), aspen.Total())
		}
	}
}

func TestRelativeCostDecreasesWithScale(t *testing.T) {
	// Figure 5: for fixed n, ShareBackup's relative cost falls as the
	// network grows (backups amortize over larger failure groups).
	prev := math.Inf(1)
	for _, k := range []int{8, 16, 24, 32, 48, 64} {
		sb, err := ShareBackupExtra(k, 1, EDC)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Relative(sb, k, EDC)
		if err != nil {
			t.Fatal(err)
		}
		if rel >= prev {
			t.Errorf("relative cost not decreasing at k=%d: %v >= %v", k, rel, prev)
		}
		prev = rel
	}
}

func TestCompare(t *testing.T) {
	rows, err := Compare(48, 1, EDC)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering of Figure 5: ShareBackup < Aspen < 1:1.
	if !(rows[0].Relative < rows[1].Relative && rows[1].Relative < rows[2].Relative) {
		t.Errorf("relative costs not ordered: %v %v %v", rows[0].Relative, rows[1].Relative, rows[2].Relative)
	}
	if rows[0].Architecture != "ShareBackup(n=1)" {
		t.Errorf("row 0 = %q", rows[0].Architecture)
	}
}

func TestValidation(t *testing.T) {
	if _, err := FatTree(3, EDC); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := ShareBackupExtra(48, -1, EDC); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := AspenExtra(0, EDC); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := OneToOneExtra(5, EDC); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := Relative(Breakdown{}, 2, EDC); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := Compare(7, 1, EDC); err == nil {
		t.Error("odd k accepted in Compare")
	}
}
