// Package cost implements the cost model of Section 5.2 (Table 2 and
// Figure 5): hardware cost equations for fat-tree, ShareBackup, Aspen Tree,
// and 1:1 backup, under electrical (E-DC) and optical (O-DC) data center
// price points.
//
// Variables follow Table 2: a is the per-port cost of circuit switches, b
// the per-port cost of packet switches, c the cost per cable. ShareBackup
// adds 5/2*k*n backup switches (k ports each), 5/4*k^2*n cable-equivalents,
// and 3/2*k^2*(k/2+n+2) circuit-switch ports on top of a fat-tree.
package cost

import "fmt"

// Prices is a market price point (Table 2's bottom half).
type Prices struct {
	Name        string
	CircuitPort float64 // a: per-port cost of circuit switches
	SwitchPort  float64 // b: per-port cost of packet switches
	Cable       float64 // c: cost per cable
}

// EDC prices an electrical data center: $3/port crosspoint circuit switches
// (XFabric), $60/port packet switches ($3000 48-port 10GbE bare-metal),
// $81 10 m 10G DAC cables.
var EDC = Prices{Name: "E-DC", CircuitPort: 3, SwitchPort: 60, Cable: 81}

// ODC prices an optical data center: $10/port 2D-MEMS circuit switches,
// the same packet switches, and $40 cables (2 x $16 transceivers + $8 fiber).
var ODC = Prices{Name: "O-DC", CircuitPort: 10, SwitchPort: 60, Cable: 40}

// Breakdown itemizes a cost into Table 2's three terms.
type Breakdown struct {
	CircuitPorts float64 // a-term
	SwitchPorts  float64 // b-term
	Cables       float64 // c-term
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 { return b.CircuitPorts + b.SwitchPorts + b.Cables }

func checkK(k int) error {
	if k < 4 || k%2 != 0 {
		return fmt.Errorf("cost: k=%d must be even and >= 4", k)
	}
	return nil
}

// FatTree returns the cost of a plain k-ary fat-tree:
// (5/4)k^3*b + (k^3/2)*c. The b-term counts 5k^2/4 switches of k ports; the
// c-term counts the k^3/2 switch-to-switch cables.
func FatTree(k int, p Prices) (Breakdown, error) {
	if err := checkK(k); err != nil {
		return Breakdown{}, err
	}
	kf := float64(k)
	return Breakdown{
		SwitchPorts: 5.0 / 4.0 * kf * kf * kf * p.SwitchPort,
		Cables:      kf * kf * kf / 2.0 * p.Cable,
	}, nil
}

// ShareBackupExtra returns ShareBackup's additional cost over fat-tree:
// (3/2)k^2(k/2+n+2)*a + (5/2)k^2*n*b + (5/4)k^2*n*c.
func ShareBackupExtra(k, n int, p Prices) (Breakdown, error) {
	if err := checkK(k); err != nil {
		return Breakdown{}, err
	}
	if n < 0 {
		return Breakdown{}, fmt.Errorf("cost: n=%d must be non-negative", n)
	}
	kf, nf := float64(k), float64(n)
	return Breakdown{
		CircuitPorts: 3.0 / 2.0 * kf * kf * (kf/2 + nf + 2) * p.CircuitPort,
		SwitchPorts:  5.0 / 2.0 * kf * kf * nf * p.SwitchPort,
		Cables:       5.0 / 4.0 * kf * kf * nf * p.Cable,
	}, nil
}

// AspenExtra returns Aspen Tree's additional cost over fat-tree:
// (k^3/2)*b + (k^3/4)*c — one extra layer of k^2/2 switches and k^3/4 more
// cables.
func AspenExtra(k int, p Prices) (Breakdown, error) {
	if err := checkK(k); err != nil {
		return Breakdown{}, err
	}
	kf := float64(k)
	return Breakdown{
		SwitchPorts: kf * kf * kf / 2.0 * p.SwitchPort,
		Cables:      kf * kf * kf / 4.0 * p.Cable,
	}, nil
}

// OneToOneExtra returns 1:1 backup's additional cost over fat-tree:
// (15/4)k^3*b + (3/2)k^3*c — every switch duplicated with doubled port
// counts, every inter-switch link duplicated into a mesh with the shadows.
func OneToOneExtra(k int, p Prices) (Breakdown, error) {
	if err := checkK(k); err != nil {
		return Breakdown{}, err
	}
	kf := float64(k)
	return Breakdown{
		SwitchPorts: 15.0 / 4.0 * kf * kf * kf * p.SwitchPort,
		Cables:      3.0 / 2.0 * kf * kf * kf * p.Cable,
	}, nil
}

// Relative returns an architecture's additional cost as a fraction of the
// fat-tree baseline cost — the y-axis of Figure 5.
func Relative(extra Breakdown, k int, p Prices) (float64, error) {
	base, err := FatTree(k, p)
	if err != nil {
		return 0, err
	}
	return extra.Total() / base.Total(), nil
}

// Row is one architecture's entry in a Table 2 / Figure 5 rendering.
type Row struct {
	Architecture string
	Extra        Breakdown
	Relative     float64 // extra / fat-tree
}

// Compare evaluates all architectures at one (k, n, prices) point:
// ShareBackup with the given n, Aspen Tree, and 1:1 backup.
func Compare(k, n int, p Prices) ([]Row, error) {
	sb, err := ShareBackupExtra(k, n, p)
	if err != nil {
		return nil, err
	}
	at, err := AspenExtra(k, p)
	if err != nil {
		return nil, err
	}
	oo, err := OneToOneExtra(k, p)
	if err != nil {
		return nil, err
	}
	rows := []Row{
		{Architecture: fmt.Sprintf("ShareBackup(n=%d)", n), Extra: sb},
		{Architecture: "AspenTree", Extra: at},
		{Architecture: "1:1Backup", Extra: oo},
	}
	for i := range rows {
		rows[i].Relative, err = Relative(rows[i].Extra, k, p)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
