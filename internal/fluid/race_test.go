package fluid

import (
	"sync"
	"testing"

	"sharebackup/internal/obs"
)

// Concurrent simulators sharing one Telemetry (the sweep-worker shape:
// process-default telemetry installed, every shard building its own
// Simulator) must be race-free: the shared counters/histograms are atomic
// and the per-link gauge cache is mutex-guarded. Run under -race this test
// is the proof; without -race it still checks the merged counters.
func TestConcurrentSimulatorsShareDefaultTelemetry(t *testing.T) {
	g, path := twoLinkTopo(t)
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	SetDefaultTelemetry(tel)
	defer SetDefaultTelemetry(nil)

	const sims = 8
	var wg sync.WaitGroup
	errs := make([]error, sims)
	for w := 0; w < sims; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := New(g) // picks up the process default
			for id := 0; id < 4; id++ {
				if err := sim.AddFlow(FlowID(id), 2, float64(id), path); err != nil {
					errs[w] = err
					return
				}
			}
			if err := sim.RunToCompletion(); err != nil {
				errs[w] = err
				return
			}
			sim.SampleUtilization()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := tel.FlowsCompleted.Value(); got != sims*4 {
		t.Fatalf("completed flows = %d, want %d", got, sims*4)
	}
}

// SetTelemetry may race with a simulation loop on another goroutine (the
// simulator's documented exception to single-goroutine ownership); the
// atomic pointer makes attach/detach-while-running safe.
func TestSetTelemetryWhileRunning(t *testing.T) {
	g, path := twoLinkTopo(t)
	tel := NewTelemetry(obs.NewRegistry())

	sim := New(g)
	for id := 0; id < 64; id++ {
		if err := sim.AddFlow(FlowID(id), 2, float64(id), path); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sim.RunToCompletion() }()
	for i := 0; i < 100; i++ {
		sim.SetTelemetry(tel)
		sim.SetTelemetry(nil)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
