package fluid

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"sharebackup/internal/topo"
)

// TestDifferentialParallelWorkers extends the differential fuzz harness to
// the parallel fill path: every randomized schedule is replayed in lockstep
// through the serial incremental engine (workers=1), parallel variants at
// worker counts {2, GOMAXPROCS, 13} with the pool threshold forced to zero
// so even tiny passes dispatch to workers, and the forced-full reference.
//
// The contract under test is the strong one from DESIGN.md §15: parallel
// fills are *bit-identical* to serial — every rate, remaining-byte count,
// and FCT compared with ==, not a tolerance. (The full-recompute reference
// takes a different arithmetic path, so it gets the usual relEps-scale
// tolerance, same as TestDifferentialIncrementalVsFull.)
func TestDifferentialParallelWorkers(t *testing.T) {
	schedules := 400
	if testing.Short() {
		schedules = 60
	}
	workerCounts := []int{2, runtime.GOMAXPROCS(0), 13}
	var parallelPasses int64
	for seed := 0; seed < schedules; seed++ {
		parallelPasses += parallelDifferentialSchedule(t, int64(seed), workerCounts)
		if t.Failed() {
			t.Fatalf("schedule %d diverged", seed)
		}
	}
	// The suite must actually have exercised the worker pool, or the ==
	// comparisons above proved nothing about the parallel path.
	if parallelPasses == 0 {
		t.Fatal("no schedule dispatched a parallel fill; the pool threshold override is broken")
	}
}

// parallelDifferentialSchedule replays one randomized schedule (same
// generator shape as differentialSchedule: random connected graph, staggered
// arrivals, mid-run reroutes/stalls/recoveries) through the serial engine,
// the parallel variants, and the full reference, comparing state after every
// event batch. Returns the parallel passes the variants ran.
func parallelDifferentialSchedule(t *testing.T, seed int64, workerCounts []int) int64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	n := 4 + r.Intn(8)
	g := &topo.Topology{}
	var nodes []topo.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, g.AddNode(topo.KindEdge, 0, i))
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddLink(nodes[i], nodes[r.Intn(i)], 0.5+r.Float64()*4); err != nil {
			t.Fatal(err)
		}
	}
	for extra := 0; extra < n; extra++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || g.LinkBetween(nodes[a], nodes[b]) != topo.NoLink {
			continue
		}
		if _, err := g.AddLink(nodes[a], nodes[b], 0.5+r.Float64()*4); err != nil {
			t.Fatal(err)
		}
	}
	var pool []topo.Path
	for i := 0; i < 2*n; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		if p, ok := g.ShortestPath(nodes[a], nodes[b], nil); ok {
			pool = append(pool, p)
		}
	}
	if len(pool) == 0 {
		return 0
	}

	serial := New(g)
	serial.SetWorkers(1)
	var par []*Simulator
	for _, w := range workerCounts {
		s := New(g)
		s.SetWorkers(w)
		// Force the pool to engage on the tiny fuzz passes; production runs
		// gate on defaultParMinFlows purely for handoff amortization.
		s.parMinFlows = 0
		par = append(par, s)
	}
	full := New(g)
	full.ForceFullRecompute(true)
	all := append(append([]*Simulator{serial}, par...), full)

	// checkLockstep asserts the parallel variants match the serial engine
	// bit-for-bit on every live flow.
	nf := 2 + r.Intn(11)
	checkLockstep := func(when string) {
		for i := 0; i < nf; i++ {
			fs := serial.Flow(FlowID(i))
			if fs == nil {
				continue
			}
			for vi, s := range par {
				fp := s.Flow(FlowID(i))
				if fs.Rate() != fp.Rate() || fs.Remaining() != fp.Remaining() {
					t.Errorf("seed %d %s flow %d: workers=%d diverged from serial: rate %.17g != %.17g or remaining %.17g != %.17g",
						seed, when, i, workerCounts[vi], fp.Rate(), fs.Rate(), fp.Remaining(), fs.Remaining())
				}
			}
		}
	}

	for i := 0; i < nf; i++ {
		bytes := 1 + r.Float64()*500
		arrival := r.Float64() * 5
		p := pool[r.Intn(len(pool))]
		for _, s := range all {
			if err := s.AddFlow(FlowID(i), bytes, arrival, p); err != nil {
				t.Fatal(err)
			}
		}
	}

	stalled := make(map[FlowID]bool)
	now := 0.0
	for op := 0; op < 3+r.Intn(6); op++ {
		now += r.Float64() * 4
		for _, s := range all {
			if err := s.Run(now); err != nil {
				t.Fatal(err)
			}
		}
		checkLockstep("mid-run")
		if t.Failed() {
			return 0
		}
		id := FlowID(r.Intn(nf))
		if serial.Flow(id).Done() || full.Flow(id).Done() {
			continue
		}
		switch r.Intn(3) {
		case 0: // reroute
			p := pool[r.Intn(len(pool))]
			for _, s := range all {
				if err := s.SetPath(id, p); err != nil {
					t.Fatal(err)
				}
			}
			delete(stalled, id)
		case 1: // stall
			for _, s := range all {
				if err := s.SetPath(id, topo.Path{}); err != nil {
					t.Fatal(err)
				}
			}
			stalled[id] = true
		case 2: // recover a stalled flow, if any
			for sid := range stalled {
				if serial.Flow(sid).Done() || full.Flow(sid).Done() {
					continue
				}
				p := pool[r.Intn(len(pool))]
				for _, s := range all {
					if err := s.SetPath(sid, p); err != nil {
						t.Fatal(err)
					}
				}
				delete(stalled, sid)
				break
			}
		}
	}
	for sid := range stalled {
		if serial.Flow(sid).Done() || full.Flow(sid).Done() {
			continue
		}
		p := pool[r.Intn(len(pool))]
		for _, s := range all {
			if err := s.SetPath(sid, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range all {
		if err := s.RunToCompletion(); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < nf; i++ {
		fs := serial.Flow(FlowID(i))
		for vi, s := range par {
			if fp := s.Flow(FlowID(i)); fp.Finish() != fs.Finish() {
				t.Errorf("seed %d flow %d: workers=%d finish %.17g != serial %.17g",
					seed, i, workerCounts[vi], fp.Finish(), fs.Finish())
			}
		}
		ff := full.Flow(FlowID(i))
		tol := 64 * relEps * (math.Abs(ff.Finish()) + 1)
		if math.Abs(fs.Finish()-ff.Finish()) > tol {
			t.Errorf("seed %d flow %d: serial finish %v, full finish %v (Δ=%g > %g)",
				seed, i, fs.Finish(), ff.Finish(), math.Abs(fs.Finish()-ff.Finish()), tol)
		}
	}
	var passes int64
	for _, s := range par {
		passes += s.Stats().ParallelPasses
	}
	return passes
}
