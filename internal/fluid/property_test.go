package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sharebackup/internal/topo"
)

// TestQuickMaxMinInvariants checks, over random topologies and workloads,
// the three defining properties of max-min fair rates:
//
//  1. feasibility: no link carries more than its capacity;
//  2. no starvation: every connected flow has a positive rate;
//  3. max-min optimality (bottleneck characterization): every flow crosses
//     at least one saturated link on which it has a maximal rate.
func TestQuickMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random connected graph.
		n := 3 + r.Intn(8)
		g := &topo.Topology{}
		var nodes []topo.NodeID
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.AddNode(topo.KindEdge, 0, i))
		}
		for i := 1; i < n; i++ {
			cap := 0.5 + r.Float64()*4
			if _, err := g.AddLink(nodes[i], nodes[r.Intn(i)], cap); err != nil {
				return false
			}
		}
		for extra := 0; extra < n/2; extra++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b || g.LinkBetween(nodes[a], nodes[b]) != topo.NoLink {
				continue
			}
			if _, err := g.AddLink(nodes[a], nodes[b], 0.5+r.Float64()*4); err != nil {
				return false
			}
		}
		sim := New(g)
		nf := 1 + r.Intn(12)
		for i := 0; i < nf; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			p, ok := g.ShortestPath(nodes[a], nodes[b], nil)
			if !ok {
				return false
			}
			if err := sim.AddFlow(FlowID(i), 1e9, 0, p); err != nil {
				return false
			}
		}
		if err := sim.Run(0); err != nil {
			return false
		}
		usage := make([]float64, g.NumLinks())
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			if fl.Rate() <= 0 {
				return false // starvation
			}
			for _, l := range fl.Path().Links {
				usage[l] += fl.Rate()
			}
		}
		const tol = 1e-6
		for l, u := range usage {
			if u > g.Link(topo.LinkID(l)).Capacity*(1+tol) {
				return false // infeasible
			}
		}
		// Bottleneck characterization.
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			ok := false
			for _, l := range fl.Path().Links {
				saturated := usage[l] >= g.Link(l).Capacity*(1-tol)
				if !saturated {
					continue
				}
				maximal := true
				for j := 0; j < nf; j++ {
					other := sim.Flow(FlowID(j))
					if other.Path().ContainsLink(l) && other.Rate() > fl.Rate()*(1+tol) {
						maximal = false
						break
					}
				}
				if maximal {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickByteConservation: total bytes delivered equals total bytes
// offered when every flow completes, regardless of arrival pattern.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &topo.Topology{}
		a := g.AddNode(topo.KindHost, 0, 0)
		m := g.AddNode(topo.KindEdge, 0, 0)
		b := g.AddNode(topo.KindHost, 0, 1)
		if _, err := g.AddLink(a, m, 1+r.Float64()*9); err != nil {
			return false
		}
		if _, err := g.AddLink(m, b, 1+r.Float64()*9); err != nil {
			return false
		}
		p, _ := g.ShortestPath(a, b, nil)
		sim := New(g)
		nf := 1 + r.Intn(10)
		total := 0.0
		for i := 0; i < nf; i++ {
			bytes := 1 + r.Float64()*1000
			total += bytes
			if err := sim.AddFlow(FlowID(i), bytes, r.Float64()*10, p); err != nil {
				return false
			}
		}
		if err := sim.RunToCompletion(); err != nil {
			return false
		}
		// Integrate delivered bytes from finish times: every flow done
		// with remaining == 0.
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			if !fl.Done() || fl.Remaining() > 1e-6*fl.Bytes() {
				return false
			}
			if fl.Finish() < fl.Arrival()-1e-12 {
				return false
			}
			// A flow can never beat the line rate.
			minTime := fl.Bytes() / minCapOn(g, p)
			if fl.Finish()-fl.Arrival() < minTime*(1-1e-6) {
				return false
			}
		}
		return !math.IsNaN(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialIncrementalVsFull is the incremental engine's safety net:
// it replays >1000 randomized schedules — random connected topologies,
// staggered arrivals, mid-run reroutes, stalls and recoveries — through the
// scoped engine and the forced-full reference in lockstep, and asserts every
// flow's completion time agrees within relEps-scale tolerance. Because
// component-scoped progressive filling is exact (max-min allocations
// decompose over link-sharing components), any disagreement is a bug, not
// an approximation artifact.
func TestDifferentialIncrementalVsFull(t *testing.T) {
	schedules := 1200
	if testing.Short() {
		schedules = 150
	}
	for seed := 0; seed < schedules; seed++ {
		if !differentialSchedule(t, int64(seed)) {
			t.Fatalf("schedule %d diverged", seed)
		}
	}
}

// dbgDump, when set to t.Logf from a throwaway test, traces a diverging
// schedule: every add/reroute/stall with exact bytes/paths, the post-op
// rates in both engines, and link capacities. This is how the satTol near-
// tie bug was isolated from seed 1081.
var dbgDump func(string, ...any)

func differentialSchedule(t *testing.T, seed int64) bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	// Random connected graph with a pool of candidate paths. The fluid
	// engine treats a path as an opaque link set, so "reroute" just means
	// swapping in another pool entry.
	n := 4 + r.Intn(8)
	g := &topo.Topology{}
	var nodes []topo.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, g.AddNode(topo.KindEdge, 0, i))
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddLink(nodes[i], nodes[r.Intn(i)], 0.5+r.Float64()*4); err != nil {
			t.Fatal(err)
		}
	}
	for extra := 0; extra < n; extra++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || g.LinkBetween(nodes[a], nodes[b]) != topo.NoLink {
			continue
		}
		if _, err := g.AddLink(nodes[a], nodes[b], 0.5+r.Float64()*4); err != nil {
			t.Fatal(err)
		}
	}
	var pool []topo.Path
	for i := 0; i < 2*n; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		if p, ok := g.ShortestPath(nodes[a], nodes[b], nil); ok {
			pool = append(pool, p)
		}
	}
	if len(pool) == 0 {
		return true
	}

	inc, full := New(g), New(g)
	full.ForceFullRecompute(true)
	both := [2]*Simulator{inc, full}
	nf := 2 + r.Intn(11)
	for i := 0; i < nf; i++ {
		bytes := 1 + r.Float64()*500
		arrival := r.Float64() * 5
		p := pool[r.Intn(len(pool))]
		if dbgDump != nil {
			dbgDump("add flow %d bytes=%.15g arrival=%.15g links=%v", i, bytes, arrival, p.Links)
		}
		for _, s := range both {
			if err := s.AddFlow(FlowID(i), bytes, arrival, p); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Mid-run storm: advance both sims together, then mutate one flow's
	// path identically in both. Flows done in either sim are left alone so
	// the two event streams stay comparable.
	stalled := make(map[FlowID]bool)
	now := 0.0
	for op := 0; op < 3+r.Intn(6); op++ {
		now += r.Float64() * 4
		for _, s := range both {
			if err := s.Run(now); err != nil {
				t.Fatal(err)
			}
		}
		id := FlowID(r.Intn(nf))
		if inc.Flow(id).Done() || full.Flow(id).Done() {
			continue
		}
		kind := r.Intn(3)
		if dbgDump != nil {
			dbgDump("op at now=%.15g: kind=%d flow=%d (rate inc=%.15g full=%.15g rem inc=%.15g full=%.15g)",
				now, kind, id, inc.Flow(id).Rate(), full.Flow(id).Rate(), inc.Flow(id).Remaining(), full.Flow(id).Remaining())
		}
		switch kind {
		case 0: // reroute
			p := pool[r.Intn(len(pool))]
			if dbgDump != nil {
				dbgDump("  reroute flow %d -> links=%v", id, p.Links)
			}
			for _, s := range both {
				if err := s.SetPath(id, p); err != nil {
					t.Fatal(err)
				}
			}
			delete(stalled, id)
		case 1: // stall
			for _, s := range both {
				if err := s.SetPath(id, topo.Path{}); err != nil {
					t.Fatal(err)
				}
			}
			stalled[id] = true
		case 2: // recover a stalled flow, if any
			for sid := range stalled {
				if inc.Flow(sid).Done() || full.Flow(sid).Done() {
					continue
				}
				p := pool[r.Intn(len(pool))]
				if dbgDump != nil {
					dbgDump("  recover flow %d -> links=%v", sid, p.Links)
				}
				for _, s := range both {
					if err := s.SetPath(sid, p); err != nil {
						t.Fatal(err)
					}
				}
				delete(stalled, sid)
				break
			}
		}
	}
	// Recover every still-stalled flow so RunToCompletion can drain.
	for sid := range stalled {
		if inc.Flow(sid).Done() || full.Flow(sid).Done() {
			continue
		}
		p := pool[r.Intn(len(pool))]
		for _, s := range both {
			if err := s.SetPath(sid, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if dbgDump != nil {
		for _, s := range both {
			if err := s.Run(now); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nf; i++ {
			dbgDump("post-ops flow %d: rate inc=%.17g full=%.17g rem inc=%.17g full=%.17g",
				i, inc.Flow(FlowID(i)).Rate(), full.Flow(FlowID(i)).Rate(),
				inc.Flow(FlowID(i)).Remaining(), full.Flow(FlowID(i)).Remaining())
		}
		for l := 0; l < g.NumLinks(); l++ {
			dbgDump("link %d cap=%.17g", l, g.Link(topo.LinkID(l)).Capacity)
		}
	}
	for _, s := range both {
		if err := s.RunToCompletion(); err != nil {
			t.Fatal(err)
		}
	}

	ok := true
	for i := 0; i < nf; i++ {
		fi, ff := inc.Flow(FlowID(i)), full.Flow(FlowID(i))
		if dbgDump != nil {
			dbgDump("flow %d: inc=%.15g full=%.15g Δ=%g", i, fi.Finish(), ff.Finish(), fi.Finish()-ff.Finish())
		}
		tol := 64 * relEps * (math.Abs(ff.Finish()) + 1)
		if math.Abs(fi.Finish()-ff.Finish()) > tol {
			t.Errorf("seed %d flow %d: incremental finish %v, full finish %v (Δ=%g > %g)",
				seed, i, fi.Finish(), ff.Finish(), math.Abs(fi.Finish()-ff.Finish()), tol)
			ok = false
		}
	}
	return ok
}

func minCapOn(g *topo.Topology, p topo.Path) float64 {
	min := math.Inf(1)
	for _, l := range p.Links {
		if c := g.Link(l).Capacity; c < min {
			min = c
		}
	}
	return min
}
