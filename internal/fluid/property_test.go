package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sharebackup/internal/topo"
)

// TestQuickMaxMinInvariants checks, over random topologies and workloads,
// the three defining properties of max-min fair rates:
//
//  1. feasibility: no link carries more than its capacity;
//  2. no starvation: every connected flow has a positive rate;
//  3. max-min optimality (bottleneck characterization): every flow crosses
//     at least one saturated link on which it has a maximal rate.
func TestQuickMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random connected graph.
		n := 3 + r.Intn(8)
		g := &topo.Topology{}
		var nodes []topo.NodeID
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.AddNode(topo.KindEdge, 0, i))
		}
		for i := 1; i < n; i++ {
			cap := 0.5 + r.Float64()*4
			if _, err := g.AddLink(nodes[i], nodes[r.Intn(i)], cap); err != nil {
				return false
			}
		}
		for extra := 0; extra < n/2; extra++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b || g.LinkBetween(nodes[a], nodes[b]) != topo.NoLink {
				continue
			}
			if _, err := g.AddLink(nodes[a], nodes[b], 0.5+r.Float64()*4); err != nil {
				return false
			}
		}
		sim := New(g)
		nf := 1 + r.Intn(12)
		for i := 0; i < nf; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			p, ok := g.ShortestPath(nodes[a], nodes[b], nil)
			if !ok {
				return false
			}
			if err := sim.AddFlow(FlowID(i), 1e9, 0, p); err != nil {
				return false
			}
		}
		if err := sim.Run(0); err != nil {
			return false
		}
		usage := make([]float64, g.NumLinks())
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			if fl.Rate() <= 0 {
				return false // starvation
			}
			for _, l := range fl.Path.Links {
				usage[l] += fl.Rate()
			}
		}
		const tol = 1e-6
		for l, u := range usage {
			if u > g.Link(topo.LinkID(l)).Capacity*(1+tol) {
				return false // infeasible
			}
		}
		// Bottleneck characterization.
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			ok := false
			for _, l := range fl.Path.Links {
				saturated := usage[l] >= g.Link(l).Capacity*(1-tol)
				if !saturated {
					continue
				}
				maximal := true
				for j := 0; j < nf; j++ {
					other := sim.Flow(FlowID(j))
					if other.Path.ContainsLink(l) && other.Rate() > fl.Rate()*(1+tol) {
						maximal = false
						break
					}
				}
				if maximal {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickByteConservation: total bytes delivered equals total bytes
// offered when every flow completes, regardless of arrival pattern.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &topo.Topology{}
		a := g.AddNode(topo.KindHost, 0, 0)
		m := g.AddNode(topo.KindEdge, 0, 0)
		b := g.AddNode(topo.KindHost, 0, 1)
		if _, err := g.AddLink(a, m, 1+r.Float64()*9); err != nil {
			return false
		}
		if _, err := g.AddLink(m, b, 1+r.Float64()*9); err != nil {
			return false
		}
		p, _ := g.ShortestPath(a, b, nil)
		sim := New(g)
		nf := 1 + r.Intn(10)
		total := 0.0
		for i := 0; i < nf; i++ {
			bytes := 1 + r.Float64()*1000
			total += bytes
			if err := sim.AddFlow(FlowID(i), bytes, r.Float64()*10, p); err != nil {
				return false
			}
		}
		if err := sim.RunToCompletion(); err != nil {
			return false
		}
		// Integrate delivered bytes from finish times: every flow done
		// with remaining == 0.
		for i := 0; i < nf; i++ {
			fl := sim.Flow(FlowID(i))
			if !fl.Done() || fl.Remaining() > 1e-6*fl.Bytes {
				return false
			}
			if fl.Finish() < fl.Arrival-1e-12 {
				return false
			}
			// A flow can never beat the line rate.
			minTime := fl.Bytes / minCapOn(g, p)
			if fl.Finish()-fl.Arrival < minTime*(1-1e-6) {
				return false
			}
		}
		return !math.IsNaN(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minCapOn(g *topo.Topology, p topo.Path) float64 {
	min := math.Inf(1)
	for _, l := range p.Links {
		if c := g.Link(l).Capacity; c < min {
			min = c
		}
	}
	return min
}
