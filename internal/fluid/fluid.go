// Package fluid is a discrete-event flow-level network simulator with
// max-min fair bandwidth sharing. It stands in for the packet-level
// simulator of the paper's failure study (Section 2.2): at coflow
// timescales, completion times are dominated by how link bandwidth is shared
// among competing flows, which the classical max-min (progressive-filling)
// model captures. The simulator supports mid-run rerouting and stalling, so
// failure and recovery events can be injected between runs.
//
// The hot path is incremental (DESIGN.md §10): an event only recomputes
// rates inside the connected component of flows sharing links with the
// changed flow (full recomputation is the fallback for oversized
// components), the next completion comes from a lazily-invalidated
// finish-time heap instead of a scan, and bytes drain lazily so advancing
// time is O(1). Max-min allocations decompose exactly over link-sharing
// components, so scoped recomputation is equivalent to the global
// algorithm; the differential property tests in property_test.go replay
// randomized schedules through both engines to enforce it.
package fluid

import (
	"fmt"
	"math"
	"sync/atomic"

	"sharebackup/internal/obs/prof"
	"sharebackup/internal/topo"
)

// FlowID identifies a flow within one Simulator.
type FlowID int64

// Flow is the caller-visible record of a flow.
type Flow struct {
	ID      FlowID
	Bytes   float64 // total bytes to transfer
	Arrival float64 // arrival time, seconds
	// Path is the current route. An empty path means the flow is stalled
	// (disconnected): it holds its remaining bytes at zero rate.
	Path topo.Path

	remaining float64 // bytes left as of lastT (drains lazily after that)
	lastT     float64 // simulation time remaining was last materialized at
	rate      float64
	prevRate  float64 // scratch: rate before the in-flight recompute
	started   bool
	done      bool
	finish    float64

	epoch     uint32  // bumped on every rate change; stale heap entries differ
	activeIdx int32   // index in sim.active, -1 when not active
	visit     uint64  // component-BFS visit generation
	linkPos   []int32 // linkPos[j] = this flow's slot in sim.linkFlows[Path.Links[j]]

	sim *Simulator
}

// Remaining returns the bytes the flow still has to transfer. Bytes drain
// lazily between rate changes, so the value is materialized on demand from
// the current rate and the simulator clock.
func (f *Flow) Remaining() float64 {
	if f.sim == nil || !f.started || f.done {
		return f.remaining
	}
	r := f.remaining
	if f.rate > 0 {
		r -= f.rate * (f.sim.now - f.lastT)
		if r < 0 {
			r = 0
		}
	}
	return r
}

// Rate returns the flow's current max-min fair rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Finish returns the completion time; valid only when Done.
func (f *Flow) Finish() float64 { return f.finish }

// Stalled reports whether the flow is active but disconnected.
func (f *Flow) Stalled() bool { return f.started && !f.done && len(f.Path.Links) == 0 }

// linkRef is one entry of a per-link flow list: the flow plus which slot of
// its path the link occupies, so swap-removal can repair the moved flow's
// linkPos in O(1).
type linkRef struct {
	f    *Flow
	slot int32
}

// EngineStats counts the incremental engine's work in simulator-owned plain
// integers (telemetry-independent, so benchmarks and regression tests can
// assert on algorithmic cost instead of wall-clock).
type EngineStats struct {
	Recomputes     int64 // rate recomputation passes (scoped or full)
	FullRecomputes int64 // passes that ran over the whole active set
	RecomputeWork  int64 // flow×link incidences touched by filling passes
	HeapPops       int64 // finish events consumed from the heap
	StalePops      int64 // lazily-invalidated heap entries discarded
}

// Simulator advances a set of flows over a capacitated topology.
type Simulator struct {
	topo *topo.Topology
	caps []float64

	now     float64
	flows   map[FlowID]*Flow
	active  []*Flow // started, not done; index-mapped via Flow.activeIdx
	pending arrivalHeap
	fin     finHeap // finish-time heap, lazily invalidated via Flow.epoch

	linkFlows [][]linkRef // per-link lists of active flows crossing the link

	// Dirty tracking: links whose flow set or demand changed since the last
	// recompute seed the component BFS; fullDirty forces a global pass.
	dirtySeeds []topo.LinkID
	fullDirty  bool
	forceFull  bool // ForceFullRecompute: retained reference engine

	// Scratch buffers reused across recomputes (allocation-free steady
	// state). linkIdx maps link ID -> engaged-link index and is kept
	// all -1 between passes; linkGen/gen mark BFS-visited links.
	linkIdx   []int32
	linkGen   []uint64
	gen       uint64
	engaged   []topo.LinkID
	residual  []float64
	count     []int32
	satList   []int32
	compFlows []*Flow
	compLinks []topo.LinkID
	utilBuf   []float64

	stats EngineStats

	// tel, when non-nil, receives data-plane samples (flow lifecycle,
	// FCT/rate histograms). Every hook site is a single atomic load plus
	// nil check when telemetry is off, keeping the simulator
	// benchmark-clean. The pointer is atomic because SetTelemetry may race
	// with a simulation loop on another goroutine (e.g. debug wiring
	// installing telemetry while sweep shards run); everything else on
	// Simulator remains single-goroutine-owned, while one Telemetry value
	// may be shared by many concurrent simulators (its counters and
	// histograms are atomic, its per-link gauge cache mutex-guarded).
	tel atomic.Pointer[Telemetry]

	// OnComplete, if set, is invoked when a flow finishes, with the
	// simulator already advanced to the finish time.
	OnComplete func(*Flow)
}

// New creates a simulator over t. Link capacities are taken from the
// topology (bytes per second). The simulator samples into the process-wide
// default telemetry if one is installed (SetDefaultTelemetry); override
// per-simulator with SetTelemetry.
func New(t *topo.Topology) *Simulator {
	nl := t.NumLinks()
	caps := make([]float64, nl)
	for i, l := range t.Links {
		caps[i] = l.Capacity
	}
	s := &Simulator{
		topo:      t,
		caps:      caps,
		flows:     make(map[FlowID]*Flow),
		linkFlows: make([][]linkRef, nl),
		linkIdx:   make([]int32, nl),
		linkGen:   make([]uint64, nl),
	}
	for i := range s.linkIdx {
		s.linkIdx[i] = -1
	}
	s.tel.Store(defaultTel.Load())
	return s
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// ActiveCount returns the number of started, unfinished flows.
func (s *Simulator) ActiveCount() int { return len(s.active) }

// PendingCount returns the number of flows that have not arrived yet.
func (s *Simulator) PendingCount() int { return s.pending.Len() }

// Flow returns the flow record, or nil if unknown.
func (s *Simulator) Flow(id FlowID) *Flow { return s.flows[id] }

// Stats returns a snapshot of the engine's internal work counters.
func (s *Simulator) Stats() EngineStats { return s.stats }

// ForceFullRecompute disables component-scoped recomputation: every dirty
// event triggers a global progressive-filling pass, exactly the seed
// algorithm's behaviour. This is the retained reference engine the
// differential property tests and the storm benchmark compare against.
func (s *Simulator) ForceFullRecompute(on bool) { s.forceFull = on }

// AddFlow schedules a flow. Arrival must not be in the simulator's past.
// Bytes must be positive. A zero-length path stalls the flow from the start.
func (s *Simulator) AddFlow(id FlowID, bytes, arrival float64, path topo.Path) error {
	if _, dup := s.flows[id]; dup {
		return fmt.Errorf("fluid: duplicate flow %d", id)
	}
	if bytes <= 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("fluid: flow %d: bytes %v must be positive and finite", id, bytes)
	}
	if arrival < s.now {
		return fmt.Errorf("fluid: flow %d arrives at %v, before now (%v)", id, arrival, s.now)
	}
	f := &Flow{ID: id, Bytes: bytes, Arrival: arrival, Path: path, remaining: bytes, activeIdx: -1, sim: s}
	s.flows[id] = f
	s.pending.push(f)
	return nil
}

// SetPath reroutes (or stalls, with an empty path) an active or pending
// flow at the current time. Completed flows are rejected.
func (s *Simulator) SetPath(id FlowID, path topo.Path) error {
	f, ok := s.flows[id]
	if !ok {
		return fmt.Errorf("fluid: SetPath: unknown flow %d", id)
	}
	if f.done {
		return fmt.Errorf("fluid: SetPath: flow %d already completed", id)
	}
	if tel := s.tel.Load(); tel != nil {
		if len(path.Links) == 0 {
			tel.Stalls.Inc()
		} else {
			tel.Reroutes.Inc()
		}
	}
	if !f.started {
		// Pending flow: just swap the path; rates don't depend on it yet.
		f.Path = path
		return nil
	}
	// Materialize bytes at the old rate before the route (and hence the
	// rate) changes, then perturb both the old and new components. The
	// epoch is NOT bumped here: if the recompute lands on the same rate,
	// the flow's existing finish event is still exact. Only a rate change
	// invalidates it — in fill, or right below for a stall (the one rate
	// change that happens outside a filling pass).
	s.drain(f)
	s.detachLinks(f)
	f.Path = path
	s.attachLinks(f)
	if len(path.Links) == 0 && f.rate != 0 {
		f.rate = 0 // stalled immediately; no finish event until rerouted
		f.epoch++
	}
	return nil
}

// drain materializes f's remaining bytes up to the current time at its
// current rate. Must be called before any change to f.rate.
func (s *Simulator) drain(f *Flow) {
	if f.rate > 0 && s.now > f.lastT {
		f.remaining -= f.rate * (s.now - f.lastT)
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastT = s.now
}

// attachLinks adds f to the per-link flow lists of its current path and
// marks those links dirty.
func (s *Simulator) attachLinks(f *Flow) {
	if cap(f.linkPos) < len(f.Path.Links) {
		f.linkPos = make([]int32, len(f.Path.Links))
	}
	f.linkPos = f.linkPos[:len(f.Path.Links)]
	for j, l := range f.Path.Links {
		f.linkPos[j] = int32(len(s.linkFlows[l]))
		s.linkFlows[l] = append(s.linkFlows[l], linkRef{f: f, slot: int32(j)})
		s.markDirty(l)
	}
}

// detachLinks removes f from the per-link flow lists of its current path
// (swap-remove, repairing the moved entry's back-index) and marks those
// links dirty.
func (s *Simulator) detachLinks(f *Flow) {
	for j, l := range f.Path.Links {
		list := s.linkFlows[l]
		i := f.linkPos[j]
		last := int32(len(list) - 1)
		moved := list[last]
		list[i] = moved
		moved.f.linkPos[moved.slot] = i
		s.linkFlows[l] = list[:last]
		s.markDirty(l)
	}
}

// maxDirtySeeds bounds the dirty-link list; past it the next recompute is
// global anyway, so the seeds stop being worth tracking individually.
const maxDirtySeeds = 4096

func (s *Simulator) markDirty(l topo.LinkID) {
	if s.fullDirty {
		return
	}
	if len(s.dirtySeeds) >= maxDirtySeeds {
		s.fullDirty = true
		s.dirtySeeds = s.dirtySeeds[:0]
		return
	}
	s.dirtySeeds = append(s.dirtySeeds, l)
}

// Run advances the simulation until `until` (inclusive), processing every
// arrival and completion in time order. It may be called repeatedly;
// callers inject failures by mutating paths between calls.
func (s *Simulator) Run(until float64) error {
	if until < s.now {
		return fmt.Errorf("fluid: Run(%v) is before now (%v)", until, s.now)
	}
	for {
		s.recompute()
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].Arrival
		}
		tFin := s.nextFinishTime()
		t := math.Min(tArr, tFin)
		if t > until {
			s.now = until
			return nil
		}
		s.now = t
		if tArr <= tFin {
			s.admitArrivals(tArr)
		} else {
			s.completeDue()
		}
	}
}

// RunToCompletion advances until every flow has arrived and finished, or
// returns an error if progress is impossible (stalled flows with nothing
// else happening).
func (s *Simulator) RunToCompletion() error {
	for s.pending.Len() > 0 || len(s.active) > 0 {
		s.recompute()
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].Arrival
		}
		tFin := s.nextFinishTime()
		if math.IsInf(tArr, 1) && math.IsInf(tFin, 1) {
			return fmt.Errorf("fluid: %d stalled flows cannot make progress", len(s.active))
		}
		if tArr <= tFin {
			s.now = tArr
			s.admitArrivals(tArr)
		} else {
			s.now = tFin
			s.completeDue()
		}
	}
	return nil
}

// admitArrivals starts every pending flow arriving exactly at t, so a batch
// of simultaneous arrivals costs one rate recomputation instead of one each.
func (s *Simulator) admitArrivals(t float64) {
	admitted := 0
	for s.pending.Len() > 0 && s.pending[0].Arrival == t {
		f := s.pending.pop()
		f.started = true
		f.lastT = t
		f.activeIdx = int32(len(s.active))
		s.active = append(s.active, f)
		s.attachLinks(f)
		admitted++
	}
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsStarted.Add(int64(admitted))
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.PendingFlows.Set(int64(s.pending.Len()))
	}
}

// nextFinishTime peeks the earliest valid finish event, discarding entries
// whose epoch no longer matches their flow (the lazy half of invalidation).
func (s *Simulator) nextFinishTime() float64 {
	for s.fin.Len() > 0 {
		e := s.fin[0]
		if e.f.done || e.epoch != e.f.epoch {
			s.fin.popHead()
			s.stats.StalePops++
			continue
		}
		return e.t
	}
	return math.Inf(1)
}

// completeDue completes every flow whose (valid) finish event falls within
// relEps of the current time, so cohorts finishing together cost one rate
// recomputation instead of one each. The heap orders ties by flow ID, which
// keeps completion order deterministic and ID-sorted like the seed's scan.
func (s *Simulator) completeDue() {
	tol := relEps * (math.Abs(s.now) + 1)
	for s.fin.Len() > 0 {
		e := s.fin[0]
		if e.f.done || e.epoch != e.f.epoch {
			s.fin.popHead()
			s.stats.StalePops++
			continue
		}
		if e.t > s.now+tol {
			return
		}
		s.fin.popHead()
		s.stats.HeapPops++
		s.complete(e.f)
	}
}

const (
	eps = 1e-12
	// relEps is the relative tolerance below which a flow's remaining
	// bytes are treated as finished, so that flows completing at the
	// same instant are batched into one event.
	relEps = 1e-9
	// satTol merges bottleneck links whose fair shares tie within this
	// relative tolerance into one progressive-filling round. It must stay
	// at float-rounding scale: the merge outcome depends on which links
	// share a pass, so any tolerance wide enough to capture genuinely
	// different capacities would make component-scoped passes disagree
	// with full passes and void the exact-decomposition invariant
	// (exercised by TestDifferentialIncrementalVsFull, seed 1081: two
	// random capacities 1.2e-6 apart).
	satTol = 1e-12
)

func (s *Simulator) complete(f *Flow) {
	f.done = true
	f.finish = s.now
	rate := f.rate
	f.rate = 0
	f.remaining = 0
	f.lastT = s.now
	s.detachLinks(f)
	// Swap-remove from the active set; the index map keeps this O(1)
	// regardless of cohort size (the seed's pointer-equality splice was
	// O(active) per completion).
	i := f.activeIdx
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[i] = moved
	moved.activeIdx = i
	s.active = s.active[:last]
	f.activeIdx = -1
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsCompleted.Inc()
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.FCT.Record(int64((f.finish - f.Arrival) * 1e6)) // seconds → µs
		tel.FlowRate.Record(int64(rate))
	}
	if s.OnComplete != nil {
		s.OnComplete(f)
	}
}

// Utilization returns each link's current aggregate flow rate divided by its
// capacity — a snapshot of fabric load for experiments and debugging. Rates
// are refreshed if a topology or flow change is pending. The slice is newly
// allocated; hot callers should use UtilizationInto.
func (s *Simulator) Utilization() []float64 { return s.UtilizationInto(nil) }

// UtilizationInto is Utilization filling a caller-reusable buffer: buf is
// resized (reallocating only when too small) and returned.
func (s *Simulator) UtilizationInto(buf []float64) []float64 {
	s.recompute()
	if cap(buf) < len(s.caps) {
		buf = make([]float64, len(s.caps))
	}
	buf = buf[:len(s.caps)]
	for i := range buf {
		buf[i] = 0
	}
	for _, f := range s.active {
		for _, l := range f.Path.Links {
			buf[l] += f.rate
		}
	}
	for i := range buf {
		if s.caps[i] > 0 {
			buf[i] /= s.caps[i]
		}
	}
	return buf
}

// recompute refreshes rates if any link is dirty. The dirty component —
// every flow reachable from the seed links via link-sharing — is
// recomputed in isolation; by construction no flow outside the component
// shares a link with one inside, and max-min allocations decompose exactly
// over such components, so the scoped result equals the global one. When
// the component exceeds half the active set (or the seed list overflowed),
// the global pass is cheaper than BFS + scoped filling and runs instead.
func (s *Simulator) recompute() {
	if !s.fullDirty && len(s.dirtySeeds) == 0 {
		return
	}
	// Tag the recomputation for the continuous profiler. Gated on Active
	// so the steady state stays allocation-free: pprof label sets allocate,
	// and this is the storm hot path.
	if prof.Active() {
		prof.Do(prof.PhaseStormRecompute, s.recomputeDirty)
		return
	}
	s.recomputeDirty()
}

// recomputeDirty is recompute past its cheap not-dirty guard — split out so
// the profiler can label it without taxing the unprofiled path.
func (s *Simulator) recomputeDirty() {
	s.stats.Recomputes++
	tel := s.tel.Load()
	if tel != nil {
		tel.RateRecomputes.Inc()
	}
	full := s.forceFull || s.fullDirty
	if !full {
		comp := s.componentOfDirty()
		if 2*len(comp) > len(s.active) {
			full = true
		} else {
			s.fill(comp, tel)
		}
	}
	if full {
		s.stats.FullRecomputes++
		if tel != nil {
			tel.FullRecomputes.Inc()
		}
		s.fill(s.active, tel)
	}
	s.fullDirty = false
	s.dirtySeeds = s.dirtySeeds[:0]
}

// componentOfDirty BFSes the link-sharing graph outward from the dirty seed
// links: a link pulls in every flow crossing it, a flow pulls in every link
// on its path. The result (kept in reusable scratch) is closed under
// sharing: all flows on any collected link are collected.
func (s *Simulator) componentOfDirty() []*Flow {
	s.gen++
	links := s.compLinks[:0]
	comp := s.compFlows[:0]
	for _, l := range s.dirtySeeds {
		if s.linkGen[l] != s.gen {
			s.linkGen[l] = s.gen
			links = append(links, l)
		}
	}
	for qi := 0; qi < len(links); qi++ {
		for _, ref := range s.linkFlows[links[qi]] {
			f := ref.f
			if f.visit == s.gen {
				continue
			}
			f.visit = s.gen
			comp = append(comp, f)
			for _, l2 := range f.Path.Links {
				if s.linkGen[l2] != s.gen {
					s.linkGen[l2] = s.gen
					links = append(links, l2)
				}
			}
		}
	}
	s.compLinks, s.compFlows = links, comp
	return comp
}

// fill runs progressive filling over flowSet: all unfrozen flows' rates
// rise together; when a link saturates, its flows freeze at the current
// level. Stalled flows get rate zero. flowSet must be closed under link
// sharing (a component union, or the whole active set), so every engaged
// link's full capacity belongs to the set. Flows whose rate changed get a
// new epoch and a fresh finish event; unchanged flows keep their exact
// heap entries.
func (s *Simulator) fill(flowSet []*Flow, tel *Telemetry) {
	// Engaged links are gathered into dense slices so the per-iteration
	// min-search and residual updates are cache-friendly scans; the
	// linkIdx scratch array (sized to the topology, all -1 between passes)
	// translates link IDs once, during setup. Freezing walks the saturated
	// links' flow lists rather than rescanning every unfrozen flow per
	// round, and links whose flows have all frozen are swap-removed, so a
	// pass costs O(setup + rounds×live links + flow×link incidences)
	// instead of the seed's O(rounds × flows×links).
	var (
		residual = s.residual[:0]
		count    = s.count[:0]
		engaged  = s.engaged[:0]
		satList  = s.satList[:0]
		work     int64
	)
	unfrozen := 0
	for _, f := range flowSet {
		s.drain(f)
		f.prevRate = f.rate
		f.rate = 0
		if len(f.Path.Links) == 0 {
			continue
		}
		unfrozen++
		work += int64(len(f.Path.Links))
		for _, l := range f.Path.Links {
			li := s.linkIdx[l]
			if li < 0 {
				li = int32(len(residual))
				s.linkIdx[l] = li
				engaged = append(engaged, l)
				residual = append(residual, s.caps[l])
				count = append(count, 0)
			}
			count[li]++
		}
	}
	level := 0.0
	for unfrozen > 0 {
		// Swap-remove links whose flows have all frozen, then find the
		// next saturating increment over the (all-live) rest. Dropping
		// dead links keeps late rounds proportional to what is still
		// contested, and min over floats is order-independent, so the
		// reshuffling cannot change any computed rate.
		delta := math.Inf(1)
		for i := 0; i < len(residual); {
			if count[i] == 0 {
				last := len(residual) - 1
				s.linkIdx[engaged[i]] = -1
				if i != last {
					residual[i], count[i], engaged[i] = residual[last], count[last], engaged[last]
					s.linkIdx[engaged[i]] = int32(i)
				}
				residual, count, engaged = residual[:last], count[:last], engaged[:last]
				continue
			}
			if d := residual[i] / float64(count[i]); d < delta {
				delta = d
			}
			i++
		}
		work += int64(len(residual))
		if math.IsInf(delta, 1) {
			break // defensive; cannot happen while unfrozen > 0
		}
		level += delta
		satList = satList[:0]
		// Links whose fair share ties the bottleneck within satTol
		// saturate together (exact ties in symmetric fabrics collapse into
		// one round; satTol stays at rounding scale — see its comment).
		for i := range residual {
			slack := delta * float64(count[i]) * satTol
			residual[i] -= delta * float64(count[i])
			if residual[i] < eps+slack {
				residual[i] = 0
				satList = append(satList, int32(i))
			}
		}
		if len(satList) == 0 {
			// Defensive: float underflow could leave the chosen
			// bottleneck fractionally positive; force progress by
			// saturating the first live link.
			residual[0] = 0
			satList = append(satList, 0)
		}
		// Freeze the saturated links' unfrozen flows at the current level
		// via the per-link flow lists. flowSet is closed under link
		// sharing, so every flow on an engaged link is in this pass and
		// had its rate zeroed above; rate != 0 marks "already frozen".
		for _, li := range satList {
			for _, ref := range s.linkFlows[engaged[li]] {
				f := ref.f
				work++
				if f.rate != 0 {
					continue
				}
				f.rate = level
				unfrozen--
				work += int64(len(f.Path.Links))
				for _, l := range f.Path.Links {
					count[s.linkIdx[l]]--
				}
			}
		}
	}
	// Re-index finish events for every flow whose rate actually changed;
	// bit-identical rates keep their exact heap entries valid.
	for _, f := range flowSet {
		if f.rate != f.prevRate {
			f.epoch++
			if f.rate > 0 {
				s.fin.push(finEvent{t: f.lastT + f.remaining/f.rate, epoch: f.epoch, f: f})
			}
		}
	}
	// At most one valid entry exists per active flow; past 4×active the
	// heap is mostly invalidated debris — compact it in one O(n) pass.
	if len(s.fin) > 4*len(s.active)+64 {
		s.stats.StalePops += int64(s.fin.compact())
	}
	// Restore the linkIdx all -1 invariant and hand scratch back.
	for _, l := range engaged {
		s.linkIdx[l] = -1
	}
	s.engaged = engaged[:0]
	s.residual, s.count, s.satList = residual, count, satList[:0]
	s.stats.RecomputeWork += work
	if tel != nil {
		tel.RateRecomputeWork.Add(work)
		tel.RecomputeWork.Record(work)
	}
}

// arrivalHeap orders pending flows by arrival time, then ID for determinism.
// Hand-rolled (not container/heap) so push/pop stay inlineable and free of
// interface boxing on the hot path.
type arrivalHeap []*Flow

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].ID < h[j].ID
}

func (h *arrivalHeap) push(f *Flow) {
	*h = append(*h, f)
	a := *h
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() *Flow {
	a := *h
	f := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	*h = a
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a.less(c+1, c) {
			c++
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return f
}
