// Package fluid is a discrete-event flow-level network simulator with
// max-min fair bandwidth sharing. It stands in for the packet-level
// simulator of the paper's failure study (Section 2.2): at coflow
// timescales, completion times are dominated by how link bandwidth is shared
// among competing flows, which the classical max-min (progressive-filling)
// model captures. The simulator supports mid-run rerouting and stalling, so
// failure and recovery events can be injected between runs.
//
// The hot path is incremental and cache-friendly (DESIGN.md §10, §15): flow
// state lives in structure-of-arrays columns indexed by dense slot numbers
// (no per-flow heap objects on the hot path), link incidence is packed into
// shared index arenas, and a dirty event recomputes only a scoped flow set —
// first trying a "ripple" pass that fills just the flows on the dirty links
// and proves optimality via local bottleneck checks (ripple.go), falling
// back to exact link-sharing component decomposition (parallel.go), which
// can fill independent components on a bounded worker pool with bit-identical
// results for any worker count. The next completion comes from a
// lazily-invalidated finish-time heap instead of a scan, and bytes drain
// lazily so advancing time is O(1). Max-min allocations decompose exactly
// over link-sharing components, so scoped recomputation is equivalent to the
// global algorithm; the differential property tests in property_test.go
// replay randomized schedules through both engines to enforce it.
package fluid

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"sharebackup/internal/obs/prof"
	"sharebackup/internal/topo"
)

// FlowID identifies a flow within one Simulator.
type FlowID int64

// Flow is a stable handle onto one flow's state. The state itself lives in
// the simulator's structure-of-arrays columns; the handle carries only the
// slot index, so a *Flow held across reroutes, recomputes, and other flows'
// slot recycling stays valid. Handles live in chunked slabs that never move.
// A handle becomes invalid only when its own flow is ReleaseFlow'd.
type Flow struct {
	id  FlowID
	fi  int32
	sim *Simulator
}

// ID returns the flow's identifier.
func (f *Flow) ID() FlowID { return f.id }

// Bytes returns the flow's total transfer size.
func (f *Flow) Bytes() float64 { return f.sim.fBytes[f.fi] }

// Arrival returns the flow's arrival time in seconds.
func (f *Flow) Arrival() float64 { return f.sim.fArrival[f.fi] }

// Path returns the flow's current route. An empty path means the flow is
// stalled (disconnected): it holds its remaining bytes at zero rate.
func (f *Flow) Path() topo.Path { return f.sim.fPath[f.fi] }

// Remaining returns the bytes the flow still has to transfer. Bytes drain
// lazily between rate changes, so the value is materialized on demand from
// the current rate and the simulator clock.
func (f *Flow) Remaining() float64 {
	s, fi := f.sim, f.fi
	r := s.fRemaining[fi]
	if !s.fStarted[fi] || s.fDone[fi] {
		return r
	}
	if rate := s.fRate[fi]; rate > 0 {
		r -= rate * (s.now - s.fLastT[fi])
		if r < 0 {
			r = 0
		}
	}
	return r
}

// Rate returns the flow's current max-min fair rate.
func (f *Flow) Rate() float64 { return f.sim.fRate[f.fi] }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.sim.fDone[f.fi] }

// Finish returns the completion time; valid only when Done.
func (f *Flow) Finish() float64 { return f.sim.fFinish[f.fi] }

// Stalled reports whether the flow is active but disconnected.
func (f *Flow) Stalled() bool {
	s, fi := f.sim, f.fi
	return s.fStarted[fi] && !s.fDone[fi] && len(s.fPath[fi].Links) == 0
}

// Handle slabs are fixed-size chunks so handle addresses are stable as the
// flow population grows (appending chunks never moves existing ones).
const (
	handleShift = 8
	handleSize  = 1 << handleShift
	handleMask  = handleSize - 1
)

type handleChunk [handleSize]Flow

// linkRef is one entry of a per-link flow list: the flow's slot plus which
// position of its path the link occupies, so swap-removal can repair the
// moved flow's position entry in O(1).
type linkRef struct {
	fi   int32
	slot int32
}

// EngineStats counts the incremental engine's work in simulator-owned plain
// integers (telemetry-independent, so benchmarks and regression tests can
// assert on algorithmic cost instead of wall-clock).
type EngineStats struct {
	Recomputes       int64 // rate recomputation passes (scoped or full)
	FullRecomputes   int64 // passes that ran over the whole active set
	RecomputeWork    int64 // flow×link incidences touched by filling passes
	HeapPops         int64 // finish events consumed from the heap
	RipplePasses     int64 // scoped passes settled by local verification
	RippleExpansions int64 // verification-driven ripple set growths
	RippleFallbacks  int64 // ripple passes abandoned to component BFS
	ParallelPasses   int64 // component fills run on the worker pool
	Components       int64 // link-sharing components filled across all passes
}

// Simulator advances a set of flows over a capacitated topology.
//
// Flow state is structure-of-arrays: every per-flow field is a column slice
// indexed by the flow's slot (DESIGN.md §15). Component BFS, progressive
// filling, and the ripple verification sweep walk these columns and the
// packed link-incidence arena contiguously, with no per-flow pointer chasing.
type Simulator struct {
	topo *topo.Topology
	caps []float64

	now float64

	// --- per-flow columns, indexed by slot ---
	fID        []FlowID // -1 marks a released slot
	fBytes     []float64
	fArrival   []float64
	fPath      []topo.Path
	fRemaining []float64 // bytes left as of fLastT (drains lazily after that)
	fLastT     []float64
	fRate      []float64
	fPrevRate  []float64 // rate before the in-flight recompute pass
	fFinish    []float64
	fHeapPos   []int32 // position in the finish heap, -1 when unscheduled
	fActive    []int32 // index in active, -1 when not active
	// fCert is the flow's bottleneck certificate: a link where the flow was
	// last verified saturated-and-maximal (its freeze link from the last fill
	// that sealed it, or the link check (a) certified). -1 when unknown. The
	// ripple background checks use it as an O(1) fast path; see ripple.go.
	fCert      []topo.LinkID
	fVisit     []uint64 // component/ripple membership generation
	fPrep      []uint64 // prepare() generation; guards one-drain-per-pass
	fStarted   []bool
	fDone      []bool

	// Link incidence: slot fi's attached links are linkArena[fOff[fi] :
	// fOff[fi]+fNL[fi]], and posArena (same span) holds the flow's position
	// in each link's linkFlows list. Spans are bump-allocated; retired spans
	// are garbage, compacted away when they dominate.
	fOff         []int32
	fNL          []int32
	fCap         []int32
	linkArena    []topo.LinkID
	posArena     []int32
	arenaGarbage int

	// Handles are chunked so they never move; byID maps IDs to slots and
	// freeSlots recycles released ones.
	handles   []*handleChunk
	byID      map[FlowID]int32
	freeSlots []int32

	active  []int32 // started, not done; index-mapped via fActive
	pending arrivalHeap
	fin     finHeap // indexed finish-time heap; positions mirrored in fHeapPos

	linkFlows [][]linkRef // per-link lists of active flows crossing the link
	// linkRate is each link's aggregate flow rate: adjusted eagerly on
	// attach/detach and refreshed exactly (resummed) on every seal, so the
	// ripple pass can judge links outside its scope without touching them.
	linkRate []float64

	// Dirty tracking: links whose flow set or demand changed since the last
	// recompute seed the scoped pass; fullDirty forces a global pass.
	dirtySeeds []topo.LinkID
	fullDirty  bool
	forceFull  bool // ForceFullRecompute: retained reference engine

	// Component decomposition scratch (parallel.go): linkGen/gen mark
	// BFS-visited links; comps spans index into compFlows/compLinks.
	linkGen   []uint64
	gen       uint64
	passGen   uint64
	compFlows []int32
	compLinks []topo.LinkID
	comps     []compSpan

	// Ripple scratch (ripple.go): rIdx maps link ID -> ripple-link index,
	// kept all -1 between passes; the v* columns are the verification
	// sweep's per-link results.
	rIdx []int32
	vSum []float64
	vMax []float64
	vBG  []float64
	vSat []bool
	vChg []bool

	// Per-worker fill scratch; scratch[0] serves every serial pass.
	scratch     []*fillScratch
	workers     int
	parMinFlows int
	workerWork  []int64

	utilBuf []float64

	stats EngineStats

	// tel, when non-nil, receives data-plane samples (flow lifecycle,
	// FCT/rate histograms). Every hook site is a single atomic load plus
	// nil check when telemetry is off, keeping the simulator
	// benchmark-clean. The pointer is atomic because SetTelemetry may race
	// with a simulation loop on another goroutine (e.g. debug wiring
	// installing telemetry while sweep shards run); everything else on
	// Simulator remains single-goroutine-owned, while one Telemetry value
	// may be shared by many concurrent simulators (its counters and
	// histograms are atomic, its per-link gauge cache mutex-guarded).
	tel atomic.Pointer[Telemetry]

	// OnComplete, if set, is invoked when a flow finishes, with the
	// simulator already advanced to the finish time.
	OnComplete func(*Flow)
}

// defaultParMinFlows gates the worker pool: below this many flows in a pass
// the goroutine handoff costs more than the fills.
const defaultParMinFlows = 2048

// New creates a simulator over t. Link capacities are taken from the
// topology (bytes per second). The simulator samples into the process-wide
// default telemetry if one is installed (SetDefaultTelemetry); override
// per-simulator with SetTelemetry.
func New(t *topo.Topology) *Simulator {
	nl := t.NumLinks()
	caps := make([]float64, nl)
	for i, l := range t.Links {
		caps[i] = l.Capacity
	}
	s := &Simulator{
		topo:        t,
		caps:        caps,
		byID:        make(map[FlowID]int32),
		linkFlows:   make([][]linkRef, nl),
		linkRate:    make([]float64, nl),
		linkGen:     make([]uint64, nl),
		rIdx:        make([]int32, nl),
		workers:     runtime.GOMAXPROCS(0),
		parMinFlows: defaultParMinFlows,
	}
	for i := range s.rIdx {
		s.rIdx[i] = -1
	}
	s.tel.Store(defaultTel.Load())
	return s
}

// SetWorkers bounds the worker pool used for parallel component fills
// (default runtime.GOMAXPROCS(0); n < 1 clamps to 1). Results are
// bit-identical for any worker count: every engine decision is made before
// work is distributed, components are filled independently with per-worker
// scratch, and sealing runs serially in deterministic component order.
func (s *Simulator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the current worker-pool bound.
func (s *Simulator) Workers() int { return s.workers }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// ActiveCount returns the number of started, unfinished flows.
func (s *Simulator) ActiveCount() int { return len(s.active) }

// PendingCount returns the number of flows that have not arrived yet.
func (s *Simulator) PendingCount() int { return s.pending.Len() }

// Flow returns the flow's handle, or nil if unknown.
func (s *Simulator) Flow(id FlowID) *Flow {
	fi, ok := s.byID[id]
	if !ok {
		return nil
	}
	return s.handle(fi)
}

// Stats returns a snapshot of the engine's internal work counters.
func (s *Simulator) Stats() EngineStats { return s.stats }

// ForceFullRecompute disables scoped recomputation: every dirty event
// triggers a global progressive-filling pass over the whole active set,
// exactly the seed algorithm's behaviour. This is the retained reference
// engine the differential property tests and the storm benchmark compare
// against.
func (s *Simulator) ForceFullRecompute(on bool) { s.forceFull = on }

func (s *Simulator) handle(fi int32) *Flow {
	return &s.handles[fi>>handleShift][fi&handleMask]
}

// newSlot returns a free flow slot, growing every column (and the handle
// slab) in lockstep when the free list is empty.
func (s *Simulator) newSlot() int32 {
	if n := len(s.freeSlots); n > 0 {
		fi := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return fi
	}
	fi := int32(len(s.fID))
	s.fID = append(s.fID, 0)
	s.fBytes = append(s.fBytes, 0)
	s.fArrival = append(s.fArrival, 0)
	s.fPath = append(s.fPath, topo.Path{})
	s.fRemaining = append(s.fRemaining, 0)
	s.fLastT = append(s.fLastT, 0)
	s.fRate = append(s.fRate, 0)
	s.fPrevRate = append(s.fPrevRate, 0)
	s.fFinish = append(s.fFinish, 0)
	s.fHeapPos = append(s.fHeapPos, -1)
	s.fCert = append(s.fCert, -1)
	s.fActive = append(s.fActive, -1)
	s.fVisit = append(s.fVisit, 0)
	s.fPrep = append(s.fPrep, 0)
	s.fStarted = append(s.fStarted, false)
	s.fDone = append(s.fDone, false)
	s.fOff = append(s.fOff, -1)
	s.fNL = append(s.fNL, 0)
	s.fCap = append(s.fCap, 0)
	if int(fi)>>handleShift == len(s.handles) {
		s.handles = append(s.handles, new(handleChunk))
	}
	return fi
}

// AddFlow schedules a flow. Arrival must not be in the simulator's past.
// Bytes must be positive. A zero-length path stalls the flow from the start.
func (s *Simulator) AddFlow(id FlowID, bytes, arrival float64, path topo.Path) error {
	if _, dup := s.byID[id]; dup {
		return fmt.Errorf("fluid: duplicate flow %d", id)
	}
	if bytes <= 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("fluid: flow %d: bytes %v must be positive and finite", id, bytes)
	}
	if arrival < s.now {
		return fmt.Errorf("fluid: flow %d arrives at %v, before now (%v)", id, arrival, s.now)
	}
	fi := s.newSlot()
	s.fID[fi] = id
	s.fBytes[fi] = bytes
	s.fArrival[fi] = arrival
	s.fPath[fi] = path
	s.fRemaining[fi] = bytes
	s.fLastT[fi] = 0
	s.fRate[fi] = 0
	s.fPrevRate[fi] = 0
	s.fFinish[fi] = 0
	s.fActive[fi] = -1
	s.fStarted[fi] = false
	s.fDone[fi] = false
	s.fNL[fi] = 0
	s.fHeapPos[fi] = -1 // already -1 for recycled slots (completion pops)
	s.fCert[fi] = -1
	// fVisit and fPrep deliberately survive slot recycling: the generations
	// only grow, so a recycled slot can never alias a stale membership mark.
	h := s.handle(fi)
	h.id, h.fi, h.sim = id, fi, s
	s.byID[id] = fi
	s.pending.push(arrEvent{at: arrival, id: id, fi: fi})
	return nil
}

// ReleaseFlow forgets a completed flow: the ID becomes reusable and the
// state slot is recycled by a later AddFlow. Long-running workloads (storms
// replaying millions of flows) call this from OnComplete so flow state is
// bounded by the number of concurrent flows instead of growing forever.
// Only completed flows can be released; handles to the flow are invalidated.
func (s *Simulator) ReleaseFlow(id FlowID) error {
	fi, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("fluid: ReleaseFlow: unknown flow %d", id)
	}
	if !s.fDone[fi] {
		return fmt.Errorf("fluid: ReleaseFlow: flow %d has not completed", id)
	}
	delete(s.byID, id)
	if s.fCap[fi] > 0 {
		s.arenaGarbage += int(s.fCap[fi])
		s.fOff[fi], s.fCap[fi] = -1, 0
	}
	s.fID[fi] = -1 // completion already removed the slot's finish event
	s.fPath[fi] = topo.Path{}
	s.freeSlots = append(s.freeSlots, fi)
	return nil
}

// SetPath reroutes (or stalls, with an empty path) an active or pending
// flow at the current time. Completed flows are rejected.
func (s *Simulator) SetPath(id FlowID, path topo.Path) error {
	fi, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("fluid: SetPath: unknown flow %d", id)
	}
	if s.fDone[fi] {
		return fmt.Errorf("fluid: SetPath: flow %d already completed", id)
	}
	if tel := s.tel.Load(); tel != nil {
		if len(path.Links) == 0 {
			tel.Stalls.Inc()
		} else {
			tel.Reroutes.Inc()
		}
	}
	// The certificate names a link on the old path; it can't survive a
	// route change.
	s.fCert[fi] = -1
	if !s.fStarted[fi] {
		// Pending flow: just swap the path; rates don't depend on it yet.
		s.fPath[fi] = path
		return nil
	}
	// Materialize bytes at the old rate before the route (and hence the
	// rate) changes, then perturb both the old and new components. The
	// finish event is NOT touched here: if the recompute lands on the same
	// rate, the existing event is still exact. Only a rate change moves it —
	// in seal, or right below for a stall (the one rate change that happens
	// outside a filling pass).
	s.drain(fi)
	s.detachLinks(fi)
	s.fPath[fi] = path
	s.attachLinks(fi)
	if len(path.Links) == 0 && s.fRate[fi] != 0 {
		s.fRate[fi] = 0 // stalled immediately; no finish event until rerouted
		s.finRemove(fi)
	}
	return nil
}

// drain materializes the flow's remaining bytes up to the current time at
// its current rate. Must be called before any change to its rate.
func (s *Simulator) drain(fi int32) {
	if r := s.fRate[fi]; r > 0 && s.now > s.fLastT[fi] {
		rem := s.fRemaining[fi] - r*(s.now-s.fLastT[fi])
		if rem < 0 {
			rem = 0
		}
		s.fRemaining[fi] = rem
	}
	s.fLastT[fi] = s.now
}

// prepare drains the flow and snapshots its pre-pass rate, exactly once per
// recompute pass: the fPrep generation guards re-entry, so a ripple pass
// that bails into the component fallback cannot clobber the true pre-pass
// rate with abandoned fill state.
func (s *Simulator) prepare(fi int32) {
	if s.fPrep[fi] == s.passGen {
		return
	}
	s.fPrep[fi] = s.passGen
	s.drain(fi)
	s.fPrevRate[fi] = s.fRate[fi]
}

// attachLinks adds the flow to the per-link flow lists of its current path,
// adds its rate into linkRate, and marks those links dirty.
func (s *Simulator) attachLinks(fi int32) {
	links := s.fPath[fi].Links
	n := int32(len(links))
	s.fNL[fi] = n
	if n == 0 {
		return
	}
	if s.fCap[fi] < n {
		s.growSpan(fi, n)
	}
	off := s.fOff[fi]
	rate := s.fRate[fi]
	for j, l := range links {
		s.linkArena[off+int32(j)] = l
		s.posArena[off+int32(j)] = int32(len(s.linkFlows[l]))
		s.linkFlows[l] = append(s.linkFlows[l], linkRef{fi: fi, slot: int32(j)})
		if rate != 0 {
			s.linkRate[l] += rate
		}
		s.markDirty(l)
	}
}

// growSpan gives the slot a fresh incidence span of n entries at the arena
// tail, retiring any previous span as garbage and compacting the arena when
// garbage dominates it.
func (s *Simulator) growSpan(fi, n int32) {
	if old := s.fCap[fi]; old > 0 {
		s.arenaGarbage += int(old)
		s.fOff[fi], s.fCap[fi] = -1, 0
	}
	if s.arenaGarbage > len(s.linkArena)/2 && len(s.linkArena) > 4096 {
		s.compactArena()
	}
	s.fOff[fi] = int32(len(s.linkArena))
	s.fCap[fi] = n
	for i := int32(0); i < n; i++ {
		s.linkArena = append(s.linkArena, 0)
		s.posArena = append(s.posArena, 0)
	}
}

// compactArena rewrites the incidence arenas keeping only each slot's live
// prefix (attached flows keep their fNL entries; detached and released
// spans drop). posArena values are positions in linkFlows lists, unaffected
// by the move.
func (s *Simulator) compactArena() {
	live := len(s.linkArena) - s.arenaGarbage
	if live < 0 {
		live = 0
	}
	nla := make([]topo.LinkID, 0, live)
	npa := make([]int32, 0, live)
	for fi := range s.fOff {
		keep := s.fNL[fi]
		if keep > s.fCap[fi] {
			keep = s.fCap[fi]
		}
		if keep <= 0 {
			s.fOff[fi], s.fCap[fi] = -1, 0
			continue
		}
		off := s.fOff[fi]
		s.fOff[fi] = int32(len(nla))
		s.fCap[fi] = keep
		nla = append(nla, s.linkArena[off:off+keep]...)
		npa = append(npa, s.posArena[off:off+keep]...)
	}
	s.linkArena, s.posArena = nla, npa
	s.arenaGarbage = 0
}

// detachLinks removes the flow from the per-link flow lists of its current
// path (swap-remove, repairing the moved entry's back-position), subtracts
// its rate from linkRate, and marks those links dirty.
func (s *Simulator) detachLinks(fi int32) {
	off := s.fOff[fi]
	n := s.fNL[fi]
	rate := s.fRate[fi]
	for j := int32(0); j < n; j++ {
		l := s.linkArena[off+j]
		list := s.linkFlows[l]
		i := s.posArena[off+j]
		last := int32(len(list) - 1)
		moved := list[last]
		list[i] = moved
		s.posArena[s.fOff[moved.fi]+moved.slot] = i
		s.linkFlows[l] = list[:last]
		if last == 0 {
			s.linkRate[l] = 0 // emptied: exact zero, no float residue
		} else if rate != 0 {
			s.linkRate[l] -= rate
		}
		s.markDirty(l)
	}
	s.fNL[fi] = 0
}

// maxDirtySeeds bounds the dirty-link list; past it the next recompute is
// global anyway, so the seeds stop being worth tracking individually.
const maxDirtySeeds = 4096

func (s *Simulator) markDirty(l topo.LinkID) {
	if s.fullDirty {
		return
	}
	if len(s.dirtySeeds) >= maxDirtySeeds {
		s.fullDirty = true
		s.dirtySeeds = s.dirtySeeds[:0]
		return
	}
	s.dirtySeeds = append(s.dirtySeeds, l)
}

// Run advances the simulation until `until` (inclusive), processing every
// arrival and completion in time order. It may be called repeatedly;
// callers inject failures by mutating paths between calls.
func (s *Simulator) Run(until float64) error {
	if until < s.now {
		return fmt.Errorf("fluid: Run(%v) is before now (%v)", until, s.now)
	}
	for {
		s.recompute()
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].at
		}
		tFin := s.nextFinishTime()
		t := math.Min(tArr, tFin)
		if t > until {
			s.now = until
			return nil
		}
		s.now = t
		if tArr <= tFin {
			s.admitArrivals(tArr)
		} else {
			s.completeDue()
		}
	}
}

// RunToCompletion advances until every flow has arrived and finished, or
// returns an error if progress is impossible (stalled flows with nothing
// else happening).
func (s *Simulator) RunToCompletion() error {
	for s.pending.Len() > 0 || len(s.active) > 0 {
		s.recompute()
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].at
		}
		tFin := s.nextFinishTime()
		if math.IsInf(tArr, 1) && math.IsInf(tFin, 1) {
			return fmt.Errorf("fluid: %d stalled flows cannot make progress", len(s.active))
		}
		if tArr <= tFin {
			s.now = tArr
			s.admitArrivals(tArr)
		} else {
			s.now = tFin
			s.completeDue()
		}
	}
	return nil
}

// admitArrivals starts every pending flow arriving exactly at t, so a batch
// of simultaneous arrivals costs one rate recomputation instead of one each.
func (s *Simulator) admitArrivals(t float64) {
	admitted := 0
	for s.pending.Len() > 0 && s.pending[0].at == t {
		e := s.pending.pop()
		fi := e.fi
		s.fStarted[fi] = true
		s.fLastT[fi] = t
		s.fActive[fi] = int32(len(s.active))
		s.active = append(s.active, fi)
		s.attachLinks(fi)
		admitted++
	}
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsStarted.Add(int64(admitted))
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.PendingFlows.Set(int64(s.pending.Len()))
	}
}

// nextFinishTime peeks the earliest finish event. The indexed heap holds at
// most one — always current — entry per active flow, so the head is the
// answer with no validity filtering.
func (s *Simulator) nextFinishTime() float64 {
	if s.fin.Len() > 0 {
		return s.fin[0].t
	}
	return math.Inf(1)
}

// completeDue completes every flow whose finish event falls within relEps of
// the current time, so cohorts finishing together cost one rate
// recomputation instead of one each. The heap orders ties by flow ID, which
// keeps completion order deterministic and ID-sorted like the seed's scan.
func (s *Simulator) completeDue() {
	tol := relEps * (math.Abs(s.now) + 1)
	for s.fin.Len() > 0 {
		e := s.fin[0]
		if e.t > s.now+tol {
			return
		}
		s.finPopHead()
		s.stats.HeapPops++
		s.complete(e.fi)
	}
}

const (
	eps = 1e-12
	// relEps is the relative tolerance below which a flow's remaining
	// bytes are treated as finished, so that flows completing at the
	// same instant are batched into one event.
	relEps = 1e-9
	// satTol merges bottleneck links whose fair shares tie within this
	// relative tolerance into one progressive-filling round. It must stay
	// at float-rounding scale: the merge outcome depends on which links
	// share a pass, so any tolerance wide enough to capture genuinely
	// different capacities would make component-scoped passes disagree
	// with full passes and void the exact-decomposition invariant
	// (exercised by TestDifferentialIncrementalVsFull, seed 1081: two
	// random capacities 1.2e-6 apart).
	satTol = 1e-12
)

func (s *Simulator) complete(fi int32) {
	s.fDone[fi] = true
	s.fFinish[fi] = s.now
	rate := s.fRate[fi]
	s.detachLinks(fi) // subtracts the still-current rate from linkRate
	s.fRate[fi] = 0
	s.fRemaining[fi] = 0
	s.fLastT[fi] = s.now
	// Swap-remove from the active set; the index column keeps this O(1)
	// regardless of cohort size.
	i := s.fActive[fi]
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[i] = moved
	s.fActive[moved] = i
	s.active = s.active[:last]
	s.fActive[fi] = -1
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsCompleted.Inc()
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.FCT.Record(int64((s.now - s.fArrival[fi]) * 1e6)) // seconds → µs
		tel.FlowRate.Record(int64(rate*1e3 + 0.5))            // bytes/s → milli-bytes/s
	}
	if s.OnComplete != nil {
		s.OnComplete(s.handle(fi))
	}
}

// Utilization returns each link's current aggregate flow rate divided by its
// capacity — a snapshot of fabric load for experiments and debugging. Rates
// are refreshed if a topology or flow change is pending. The slice is newly
// allocated; hot callers should use UtilizationInto.
func (s *Simulator) Utilization() []float64 { return s.UtilizationInto(nil) }

// UtilizationInto is Utilization filling a caller-reusable buffer: buf is
// resized (reallocating only when too small) and returned.
func (s *Simulator) UtilizationInto(buf []float64) []float64 {
	s.recompute()
	if cap(buf) < len(s.caps) {
		buf = make([]float64, len(s.caps))
	}
	buf = buf[:len(s.caps)]
	for i := range buf {
		buf[i] = 0
	}
	for _, fi := range s.active {
		off, n := s.fOff[fi], s.fNL[fi]
		r := s.fRate[fi]
		for j := int32(0); j < n; j++ {
			buf[s.linkArena[off+j]] += r
		}
	}
	for i := range buf {
		if s.caps[i] > 0 {
			buf[i] /= s.caps[i]
		}
	}
	return buf
}

// recompute refreshes rates if any link is dirty. The scoped pass — ripple
// with component-decomposition fallback — recomputes only flows that can be
// affected; by construction no flow outside the recomputed set shares an
// unverified link with one inside, and max-min allocations decompose exactly
// over link-sharing components, so the scoped result equals the global one.
func (s *Simulator) recompute() {
	if !s.fullDirty && len(s.dirtySeeds) == 0 {
		return
	}
	// Tag the recomputation for the continuous profiler. Gated on Active
	// so the steady state stays allocation-free: pprof label sets allocate,
	// and this is the storm hot path.
	if prof.Active() {
		prof.Do(prof.PhaseStormRecompute, s.recomputeDirty)
		return
	}
	s.recomputeDirty()
}

// recomputeDirty dispatches the dirty event to an engine pass:
//
//   - forceFull: one progressive fill over the whole active set (the
//     reference engine, seed semantics).
//   - fullDirty (seed list overflowed): exact decomposition into
//     link-sharing components, filled serially or on the worker pool.
//   - otherwise: the ripple pass (fill only flows on dirty links, prove
//     optimality locally), falling back to seeded component decomposition
//     when the proof doesn't close.
//
// Every dispatch decision depends only on simulator state, never on the
// worker count, which is what keeps parallel runs bit-identical.
func (s *Simulator) recomputeDirty() {
	s.stats.Recomputes++
	s.passGen++
	tel := s.tel.Load()
	if tel != nil {
		tel.RateRecomputes.Inc()
	}
	switch {
	case s.forceFull:
		s.stats.FullRecomputes++
		if tel != nil {
			tel.FullRecomputes.Inc()
		}
		s.fillUnion(tel)
	case s.fullDirty:
		s.stats.FullRecomputes++
		if tel != nil {
			tel.FullRecomputes.Inc()
		}
		s.decomposeAll()
		s.fillComponents(tel)
	default:
		if !s.ripple(tel) {
			s.decomposeFromSeeds()
			s.fillComponents(tel)
		}
	}
	s.fullDirty = false
	s.dirtySeeds = s.dirtySeeds[:0]
}

// fillUnion is the reference pass: prepare and fill the whole active set as
// one union, exactly the seed algorithm's behaviour.
func (s *Simulator) fillUnion(tel *Telemetry) {
	for _, fi := range s.active {
		s.prepare(fi)
	}
	links := s.compLinks[:0]
	work, _ := s.fillRates(s.active, s.scratchFor(0), 0, false, &links)
	s.compLinks = links
	s.sealFlows(s.active)
	s.sealLinks(links)
	s.finishPass(work, tel)
}

// sealFlows re-keys the finish event of every flow whose rate actually
// changed in the pass; bit-identical rates keep their exact heap entries
// untouched. Always serial and in deterministic flow order (the indexed heap
// makes the result order-independent anyway: each flow's single entry ends
// at the same key).
func (s *Simulator) sealFlows(flows []int32) {
	fRate, fPrevRate := s.fRate, s.fPrevRate
	fLastT, fRemaining := s.fLastT, s.fRemaining
	for _, fi := range flows {
		r := fRate[fi]
		if r < 0 {
			r = 0 // defensive: unfrozen sentinel from an aborted fill round
			fRate[fi] = 0
		}
		if r != fPrevRate[fi] {
			if r > 0 {
				s.finSchedule(fi, fLastT[fi]+fRemaining[fi]/r)
			} else {
				s.finRemove(fi)
			}
		}
	}
}

// sealLinks refreshes linkRate with the exact sum of attached rates for
// every link touched by the pass, so eager attach/detach adjustments can't
// accumulate float drift between passes.
func (s *Simulator) sealLinks(links []topo.LinkID) {
	for _, l := range links {
		sum := 0.0
		for _, ref := range s.linkFlows[l] {
			sum += s.fRate[ref.fi]
		}
		s.linkRate[l] = sum
	}
}

// finishPass books the pass work into stats and telemetry.
func (s *Simulator) finishPass(work int64, tel *Telemetry) {
	s.stats.RecomputeWork += work
	if tel != nil {
		tel.RateRecomputeWork.Add(work)
		tel.RecomputeWork.Record(work)
	}
}

// fillScratch is one worker's progressive-filling state. linkIdx is sized to
// the topology and kept all -1 between passes; each worker owns one scratch,
// so parallel component fills never share mutable state. mo/mn/mIdx hold the
// CSR member-incidence lists built per background-mode fill (see fillRates).
type fillScratch struct {
	linkIdx []int32
	engaged []topo.LinkID
	avail   []float64
	count   []int32
	satLv   []float64
	prevSum []float64
	satList []int32
	mo      []int32
	mn      []int32
	mCur    []int32
	mIdx    []int32
}

// scratchFor returns worker w's fill scratch, allocating through w on first
// use. scratch[0] serves every serial pass.
func (s *Simulator) scratchFor(w int) *fillScratch {
	for len(s.scratch) <= w {
		sc := &fillScratch{linkIdx: make([]int32, len(s.caps))}
		for i := range sc.linkIdx {
			sc.linkIdx[i] = -1
		}
		s.scratch = append(s.scratch, sc)
	}
	return s.scratch[w]
}

// bgUnknown marks a vBG entry whose link carries background flows but whose
// background maximum has not been walked yet this round; the ripple checks
// resolve it lazily (and cache it) only when a decision actually needs it.
const bgUnknown = -2

// ensureVCap grows the per-link verification arrays (indexed by rIdx) to at
// least n entries. Entries are rewritten from scratch every fill round, so
// growth never copies.
func (s *Simulator) ensureVCap(n int) {
	if len(s.vSum) >= n {
		return
	}
	n *= 2
	s.vSum = make([]float64, n)
	s.vMax = make([]float64, n)
	s.vBG = make([]float64, n)
	s.vSat = make([]bool, n)
	s.vChg = make([]bool, n)
}

// fillRates runs progressive filling (water-filling) over flowSet: all
// unfrozen flows' rates rise together; when a link saturates, its flows
// freeze at the current level. Stalled flows get rate zero. The level a link
// saturates at is tracked directly (satLv = avail/count), so each round's
// bottleneck search is a pure compare scan and divisions happen only when a
// link's unfrozen count actually changes.
//
// In closed mode (withBG false) flowSet must be closed under link sharing —
// a component, or the whole active set — so every engaged link's full
// capacity belongs to the set; outLinks, when non-nil, collects the engaged
// links for the caller's seal.
//
// In background mode (withBG true, the ripple pass) flows outside the set
// (fVisit != memberGen) stay frozen at their current rates and each engaged
// link offers only its residual capacity. Links whose member count equals
// their list length carry no background at all — the common case for the
// rack-local links a scoped pass centres on — and keep full capacity without
// any list walk; the rest derive their background sum from the maintained
// linkRate aggregate minus the members' pre-pass rates, again without a
// walk. Background mode also owns the ripple bookkeeping: newly engaged
// links are appended to *outLinks with s.rIdx assigned, and the verification
// arrays are maintained in-pass — vSum starts at the background sum and
// accumulates member rates as they freeze, vMax tracks the member maximum
// (freeze levels are nondecreasing, so the last write is the max), vChg
// marks links whose members moved, and vBG is the no-background/-unknown
// marker resolved lazily by the checks. Freeze rounds walk CSR member lists
// built at setup, never the full per-link flow lists.
//
// While unfrozen, member rates are parked at -1: a member can legitimately
// freeze at level 0 (background consuming a full link), so zero cannot mark
// frozenness. The caller seals afterwards — rates are final on return, but
// epochs, finish events, and linkRate are not yet updated — which is what
// makes concurrent fills of disjoint components safe: this function writes
// only member rate entries and its own scratch. The boolean result is false
// only on the defensive no-live-links break, which leaves the verification
// arrays inconsistent; ripple must fall back.
func (s *Simulator) fillRates(flowSet []int32, sc *fillScratch, memberGen uint64, withBG bool, outLinks *[]topo.LinkID) (int64, bool) {
	var (
		engaged = sc.engaged[:0]
		avail   = sc.avail[:0]
		count   = sc.count[:0]
		prevSum = sc.prevSum[:0]
		linkIdx = sc.linkIdx
		work    int64
	)
	// Hoist the flow columns the hot loops touch: going through s.field in a
	// loop reloads the slice header (and re-checks bounds against it) every
	// iteration, which is measurable at millions of incidences per storm.
	fOff, fNL := s.fOff, s.fNL
	arena := s.linkArena
	fRate, fPrevRate := s.fRate, s.fPrevRate
	fCert := s.fCert
	rIdx := s.rIdx
	unfrozen := 0
	incid := 0
	for _, fi := range flowSet {
		off, n := fOff[fi], fNL[fi]
		if n == 0 {
			fRate[fi] = 0 // stalled: no links, rate zero
			continue
		}
		fRate[fi] = -1 // unfrozen sentinel; see doc comment
		unfrozen++
		incid += int(n)
		pr := fPrevRate[fi]
		for _, l := range arena[off : off+n] {
			li := linkIdx[l]
			if li < 0 {
				li = int32(len(engaged))
				linkIdx[l] = li
				engaged = append(engaged, l)
				avail = append(avail, s.caps[l])
				count = append(count, 0)
				if outLinks != nil {
					if withBG {
						if rIdx[l] < 0 {
							rIdx[l] = int32(len(*outLinks))
							*outLinks = append(*outLinks, l)
						}
					} else {
						*outLinks = append(*outLinks, l)
					}
				}
				if withBG {
					prevSum = append(prevSum, 0)
				}
			}
			count[li]++
			if withBG {
				prevSum[li] += pr
			}
		}
	}
	work += int64(incid)

	mo, mn, mIdx := sc.mo[:0], sc.mn[:0], sc.mIdx
	var vSum, vMax []float64
	var vChg []bool
	if withBG {
		s.ensureVCap(len(*outLinks))
		vSum, vMax, vChg = s.vSum, s.vMax, s.vChg
		vBG := s.vBG
		for i, l := range engaged {
			ri := rIdx[l]
			vMax[ri] = 0
			vChg[ri] = false
			if int(count[i]) == len(s.linkFlows[l]) {
				// No background: full capacity, bit-identical to a
				// closed-mode engagement of the same link.
				vSum[ri], vBG[ri] = 0, -1
				continue
			}
			bg := s.linkRate[l] - prevSum[i]
			if bg < 0 {
				bg = 0
			}
			vSum[ri], vBG[ri] = bg, bgUnknown
			a := s.caps[l] - bg
			if a < 0 {
				a = 0
			}
			avail[i] = a
		}
		work += int64(len(engaged))

		// CSR member lists: mIdx[mo[i]:mo[i]+mn[i]] are the members on
		// engaged link i, so freeze rounds touch exactly the member
		// incidences instead of walking full per-link flow lists.
		if cap(mIdx) < incid {
			mIdx = make([]int32, incid)
		}
		mIdx = mIdx[:incid]
		cur := sc.mCur[:0]
		pos := int32(0)
		for i := range engaged {
			mo = append(mo, pos)
			mn = append(mn, count[i])
			cur = append(cur, pos)
			pos += count[i]
		}
		for _, fi := range flowSet {
			off, n := fOff[fi], fNL[fi]
			for _, l := range arena[off : off+n] {
				li := linkIdx[l]
				mIdx[cur[li]] = fi
				cur[li]++
			}
		}
		sc.mCur = cur[:0]
		work += int64(incid)
	}

	satLv := sc.satLv[:0]
	for i := range engaged {
		satLv = append(satLv, avail[i]/float64(count[i]))
	}
	satList := sc.satList[:0]
	level := 0.0
	broke := false
	for unfrozen > 0 {
		// Swap-remove links whose flows have all frozen, then find the
		// lowest saturation level over the (all-live) rest. Dropping dead
		// links keeps late rounds proportional to what is still contested,
		// and min over floats is order-independent, so the reshuffling
		// cannot change any computed rate.
		minL := math.Inf(1)
		for i := 0; i < len(engaged); {
			if count[i] == 0 {
				last := len(engaged) - 1
				linkIdx[engaged[i]] = -1
				if i != last {
					engaged[i], avail[i], count[i], satLv[i] = engaged[last], avail[last], count[last], satLv[last]
					if withBG {
						mo[i], mn[i] = mo[last], mn[last]
					}
					linkIdx[engaged[i]] = int32(i)
				}
				engaged, avail, count, satLv = engaged[:last], avail[:last], count[:last], satLv[:last]
				if withBG {
					mo, mn = mo[:last], mn[:last]
				}
				continue
			}
			if satLv[i] < minL {
				minL = satLv[i]
			}
			i++
		}
		work += int64(len(engaged))
		if math.IsInf(minL, 1) {
			broke = true
			break // defensive; cannot happen while unfrozen > 0
		}
		if minL < level {
			minL = level // rounding guard: the level never decreases
		}
		level = minL
		// Links whose saturation level ties the bottleneck within satTol
		// saturate together (exact ties in symmetric fabrics collapse into
		// one round; satTol stays at rounding scale — see its comment).
		satList = satList[:0]
		slack := satTol*level + eps
		for i := range satLv {
			if satLv[i] <= level+slack {
				satList = append(satList, int32(i))
			}
		}
		// Freeze the saturated links' unfrozen member flows at the current
		// level: CSR member lists in background mode, the (all-member)
		// per-link flow lists in closed mode. The freeze body is inlined in
		// both branches (it is far too large for the compiler to inline, and
		// runs per member incidence): rate set, certificate recorded, every
		// touched link loses one unfrozen count and the frozen allocation,
		// saturation levels re-derived for survivors, and in background mode
		// the member folds into the verification arrays.
		for _, li := range satList {
			cert := engaged[li]
			if withBG {
				for _, fi := range mIdx[mo[li] : mo[li]+mn[li]] {
					if fRate[fi] >= 0 {
						continue // already frozen this pass
					}
					fRate[fi] = level
					fCert[fi] = cert
					pr := fPrevRate[fi]
					chg := math.Abs(level-pr) > rippleTol*(pr+1)
					off, n := fOff[fi], fNL[fi]
					for _, l2 := range arena[off : off+n] {
						li2 := linkIdx[l2]
						c := count[li2] - 1
						count[li2] = c
						a := avail[li2] - level
						avail[li2] = a
						if c > 0 {
							satLv[li2] = a / float64(c)
						}
						ri := rIdx[l2]
						vSum[ri] += level
						vMax[ri] = level
						if chg {
							vChg[ri] = true
						}
					}
					work += int64(n)
					unfrozen--
				}
			} else {
				for _, ref := range s.linkFlows[cert] {
					fi := ref.fi
					if fRate[fi] >= 0 {
						continue // already frozen this pass
					}
					fRate[fi] = level
					fCert[fi] = cert
					off, n := fOff[fi], fNL[fi]
					for _, l2 := range arena[off : off+n] {
						li2 := linkIdx[l2]
						c := count[li2] - 1
						count[li2] = c
						a := avail[li2] - level
						avail[li2] = a
						if c > 0 {
							satLv[li2] = a / float64(c)
						}
					}
					work += int64(n)
					unfrozen--
				}
			}
		}
	}
	if broke {
		for _, fi := range flowSet {
			if fRate[fi] < 0 {
				fRate[fi] = 0
			}
		}
	}
	// Restore the linkIdx all -1 invariant and hand scratch back.
	for _, l := range engaged {
		linkIdx[l] = -1
	}
	sc.engaged = engaged[:0]
	sc.avail, sc.count, sc.satLv = avail[:0], count[:0], satLv[:0]
	sc.prevSum, sc.satList = prevSum[:0], satList[:0]
	sc.mo, sc.mn, sc.mIdx = mo[:0], mn[:0], mIdx[:0]
	return work, !broke
}



// arrEvent is one scheduled arrival.
type arrEvent struct {
	at float64
	id FlowID
	fi int32
}

// arrivalHeap orders pending arrivals by time, then ID for determinism.
// Hand-rolled (not container/heap) so push/pop stay inlineable and free of
// interface boxing on the hot path.
type arrivalHeap []arrEvent

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}

func (h *arrivalHeap) push(e arrEvent) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrEvent {
	a := *h
	e := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a.less(c+1, c) {
			c++
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return e
}
