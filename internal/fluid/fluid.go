// Package fluid is a discrete-event flow-level network simulator with
// max-min fair bandwidth sharing. It stands in for the packet-level
// simulator of the paper's failure study (Section 2.2): at coflow
// timescales, completion times are dominated by how link bandwidth is shared
// among competing flows, which the classical max-min (progressive-filling)
// model captures. The simulator supports mid-run rerouting and stalling, so
// failure and recovery events can be injected between runs.
package fluid

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sharebackup/internal/topo"
)

// FlowID identifies a flow within one Simulator.
type FlowID int64

// Flow is the caller-visible record of a flow.
type Flow struct {
	ID      FlowID
	Bytes   float64 // total bytes to transfer
	Arrival float64 // arrival time, seconds
	// Path is the current route. An empty path means the flow is stalled
	// (disconnected): it holds its remaining bytes at zero rate.
	Path topo.Path

	remaining float64
	rate      float64
	started   bool
	done      bool
	finish    float64
}

// Remaining returns the bytes the flow still has to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current max-min fair rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Finish returns the completion time; valid only when Done.
func (f *Flow) Finish() float64 { return f.finish }

// Stalled reports whether the flow is active but disconnected.
func (f *Flow) Stalled() bool { return f.started && !f.done && len(f.Path.Links) == 0 }

// Simulator advances a set of flows over a capacitated topology.
type Simulator struct {
	topo *topo.Topology
	caps []float64

	now     float64
	flows   map[FlowID]*Flow
	active  []*Flow // started, not done; sorted by ID
	pending arrivalHeap

	ratesDirty bool
	linkIdx    []int32 // scratch: link ID -> engaged-link index, reused across recomputes

	// tel, when non-nil, receives data-plane samples (flow lifecycle,
	// FCT/rate histograms). Every hook site is a single atomic load plus
	// nil check when telemetry is off, keeping the simulator
	// benchmark-clean. The pointer is atomic because SetTelemetry may race
	// with a simulation loop on another goroutine (e.g. debug wiring
	// installing telemetry while sweep shards run); everything else on
	// Simulator remains single-goroutine-owned, while one Telemetry value
	// may be shared by many concurrent simulators (its counters and
	// histograms are atomic, its per-link gauge cache mutex-guarded).
	tel atomic.Pointer[Telemetry]

	// OnComplete, if set, is invoked when a flow finishes, with the
	// simulator already advanced to the finish time.
	OnComplete func(*Flow)
}

// New creates a simulator over t. Link capacities are taken from the
// topology (bytes per second). The simulator samples into the process-wide
// default telemetry if one is installed (SetDefaultTelemetry); override
// per-simulator with SetTelemetry.
func New(t *topo.Topology) *Simulator {
	caps := make([]float64, t.NumLinks())
	for i, l := range t.Links {
		caps[i] = l.Capacity
	}
	s := &Simulator{topo: t, caps: caps, flows: make(map[FlowID]*Flow)}
	s.tel.Store(defaultTel.Load())
	return s
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// ActiveCount returns the number of started, unfinished flows.
func (s *Simulator) ActiveCount() int { return len(s.active) }

// PendingCount returns the number of flows that have not arrived yet.
func (s *Simulator) PendingCount() int { return s.pending.Len() }

// Flow returns the flow record, or nil if unknown.
func (s *Simulator) Flow(id FlowID) *Flow { return s.flows[id] }

// AddFlow schedules a flow. Arrival must not be in the simulator's past.
// Bytes must be positive. A zero-length path stalls the flow from the start.
func (s *Simulator) AddFlow(id FlowID, bytes, arrival float64, path topo.Path) error {
	if _, dup := s.flows[id]; dup {
		return fmt.Errorf("fluid: duplicate flow %d", id)
	}
	if bytes <= 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("fluid: flow %d: bytes %v must be positive and finite", id, bytes)
	}
	if arrival < s.now {
		return fmt.Errorf("fluid: flow %d arrives at %v, before now (%v)", id, arrival, s.now)
	}
	f := &Flow{ID: id, Bytes: bytes, Arrival: arrival, Path: path, remaining: bytes}
	s.flows[id] = f
	heap.Push(&s.pending, f)
	return nil
}

// SetPath reroutes (or stalls, with an empty path) an active or pending
// flow at the current time. Completed flows are rejected.
func (s *Simulator) SetPath(id FlowID, path topo.Path) error {
	f, ok := s.flows[id]
	if !ok {
		return fmt.Errorf("fluid: SetPath: unknown flow %d", id)
	}
	if f.done {
		return fmt.Errorf("fluid: SetPath: flow %d already completed", id)
	}
	if tel := s.tel.Load(); tel != nil {
		if len(path.Links) == 0 {
			tel.Stalls.Inc()
		} else {
			tel.Reroutes.Inc()
		}
	}
	f.Path = path
	s.ratesDirty = true
	return nil
}

// Run advances the simulation until `until` (inclusive), processing every
// arrival and completion in time order. It may be called repeatedly;
// callers inject failures by mutating paths between calls.
func (s *Simulator) Run(until float64) error {
	if until < s.now {
		return fmt.Errorf("fluid: Run(%v) is before now (%v)", until, s.now)
	}
	for {
		if s.ratesDirty {
			s.computeRates()
		}
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].Arrival
		}
		fin, tFin := s.nextFinish()
		t := math.Min(tArr, tFin)
		if t > until {
			s.advance(until)
			return nil
		}
		s.advance(t)
		switch {
		case tArr <= tFin:
			s.admitArrivals(tArr)
		default:
			s.completeFinished(fin)
		}
	}
}

// completeFinished completes `first` plus every other active flow that has
// (numerically) drained, so cohorts finishing together cost one rate
// recomputation instead of one each.
func (s *Simulator) completeFinished(first *Flow) {
	s.complete(first)
	for i := 0; i < len(s.active); {
		f := s.active[i]
		if f.rate > 0 && f.remaining <= relEps*f.Bytes {
			s.complete(f)
			continue // complete() removed s.active[i]
		}
		i++
	}
}

// admitArrivals starts every pending flow arriving exactly at t, so a batch
// of simultaneous arrivals costs one rate recomputation instead of one each.
func (s *Simulator) admitArrivals(t float64) {
	admitted := 0
	for s.pending.Len() > 0 && s.pending[0].Arrival == t {
		f := heap.Pop(&s.pending).(*Flow)
		f.started = true
		s.active = append(s.active, f)
		admitted++
	}
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].ID < s.active[j].ID })
	s.ratesDirty = true
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsStarted.Add(int64(admitted))
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.PendingFlows.Set(int64(s.pending.Len()))
	}
}

// RunToCompletion advances until every flow has arrived and finished, or
// returns an error if progress is impossible (stalled flows with nothing
// else happening).
func (s *Simulator) RunToCompletion() error {
	for s.pending.Len() > 0 || len(s.active) > 0 {
		if s.ratesDirty {
			s.computeRates()
		}
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending[0].Arrival
		}
		fin, tFin := s.nextFinish()
		if math.IsInf(tArr, 1) && math.IsInf(tFin, 1) {
			return fmt.Errorf("fluid: %d stalled flows cannot make progress", len(s.active))
		}
		if tArr <= tFin {
			s.advance(tArr)
			s.admitArrivals(tArr)
		} else {
			s.advance(tFin)
			s.completeFinished(fin)
		}
	}
	return nil
}

// advance moves time forward, draining bytes at current rates.
func (s *Simulator) advance(t float64) {
	dt := t - s.now
	if dt > 0 {
		for _, f := range s.active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	s.now = t
}

// Utilization returns each link's current aggregate flow rate divided by its
// capacity — a snapshot of fabric load for experiments and debugging. Rates
// are refreshed if a topology or flow change is pending.
func (s *Simulator) Utilization() []float64 {
	if s.ratesDirty {
		s.computeRates()
	}
	out := make([]float64, len(s.caps))
	for _, f := range s.active {
		for _, l := range f.Path.Links {
			out[l] += f.rate
		}
	}
	for i := range out {
		if s.caps[i] > 0 {
			out[i] /= s.caps[i]
		}
	}
	return out
}

// nextFinish returns the active flow finishing soonest and its finish time.
func (s *Simulator) nextFinish() (*Flow, float64) {
	var best *Flow
	bestT := math.Inf(1)
	for _, f := range s.active {
		if f.rate <= 0 {
			continue
		}
		t := s.now + f.remaining/f.rate
		if t < bestT {
			best, bestT = f, t
		}
	}
	return best, bestT
}

const (
	eps = 1e-12
	// relEps is the relative tolerance below which a flow's remaining
	// bytes are treated as finished, so that flows completing at the
	// same instant are batched into one event.
	relEps = 1e-9
	// satTol merges bottleneck links whose fair shares tie within this
	// relative tolerance into one progressive-filling round.
	satTol = 1e-6
)

func (s *Simulator) complete(f *Flow) {
	f.done = true
	f.finish = s.now
	rate := f.rate
	f.rate = 0
	f.remaining = 0
	for i, g := range s.active {
		if g == f {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.ratesDirty = true
	if tel := s.tel.Load(); tel != nil {
		tel.FlowsCompleted.Inc()
		tel.ActiveFlows.Set(int64(len(s.active)))
		tel.FCT.Record(int64((f.finish - f.Arrival) * 1e6)) // seconds → µs
		tel.FlowRate.Record(int64(rate))
	}
	if s.OnComplete != nil {
		s.OnComplete(f)
	}
}

// computeRates runs progressive filling: all unfrozen flows' rates rise
// together; when a link saturates, its flows freeze at the current level.
// Stalled flows get rate zero. The implementation keeps per-link flow lists
// so each flow is frozen exactly once: O(iterations * links + flows *
// pathlen) overall.
func (s *Simulator) computeRates() {
	s.ratesDirty = false
	if tel := s.tel.Load(); tel != nil {
		tel.RateRecomputes.Inc()
	}
	// Engaged links are gathered into dense slices so the per-iteration
	// min-search and residual updates are cache-friendly scans; the
	// linkIdx scratch array (sized to the topology, reused across
	// recomputes) translates link IDs once, during setup. In symmetric
	// topologies most flows freeze in a few mass rounds, which makes this
	// linear sweep faster in practice than a lazy-heap formulation.
	if s.linkIdx == nil {
		s.linkIdx = make([]int32, len(s.caps))
	}
	for i := range s.linkIdx {
		s.linkIdx[i] = -1
	}
	var (
		residual []float64
		count    []int32
		satFlag  []bool
	)
	unfrozen := make([]*Flow, 0, len(s.active))
	for _, f := range s.active {
		f.rate = 0
		if len(f.Path.Links) == 0 {
			continue
		}
		unfrozen = append(unfrozen, f)
		for _, l := range f.Path.Links {
			li := s.linkIdx[l]
			if li < 0 {
				li = int32(len(residual))
				s.linkIdx[l] = li
				residual = append(residual, s.caps[l])
				count = append(count, 0)
				satFlag = append(satFlag, false)
			}
			count[li]++
		}
	}
	level := 0.0
	for len(unfrozen) > 0 {
		// The next saturating increment.
		delta := math.Inf(1)
		for i := range residual {
			if count[i] == 0 {
				continue
			}
			if d := residual[i] / float64(count[i]); d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			break // defensive; cannot happen while unfrozen > 0
		}
		level += delta
		anySat := false
		// Links whose fair share ties the bottleneck within satTol
		// saturate together; merging near-ties collapses cascades of
		// almost-equal bottlenecks at a bounded relative rate error.
		for i := range residual {
			if count[i] > 0 {
				slack := delta * float64(count[i]) * satTol
				residual[i] -= delta * float64(count[i])
				if residual[i] < eps+slack {
					residual[i] = 0
					satFlag[i] = true
					anySat = true
				}
			}
		}
		if !anySat {
			// Defensive: float underflow could leave the chosen
			// bottleneck fractionally positive; force progress by
			// saturating the minimum link.
			for i := range residual {
				if count[i] > 0 {
					residual[i] = 0
					satFlag[i] = true
					break
				}
			}
		}
		// Freeze every unfrozen flow crossing a saturated link,
		// compacting the unfrozen list in place.
		kept := unfrozen[:0]
		for _, f := range unfrozen {
			sat := false
			for _, l := range f.Path.Links {
				if satFlag[s.linkIdx[l]] {
					sat = true
					break
				}
			}
			if sat {
				f.rate = level
				for _, l := range f.Path.Links {
					count[s.linkIdx[l]]--
				}
			} else {
				kept = append(kept, f)
			}
		}
		unfrozen = kept
		for i := range satFlag {
			satFlag[i] = false
		}
	}
}

// arrivalHeap orders pending flows by arrival time, then ID for determinism.
type arrivalHeap []*Flow

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].ID < h[j].ID
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(*Flow)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}
