package fluid

import (
	"testing"

	"sharebackup/internal/obs"
	"sharebackup/internal/topo"
)

// benchWorkload builds an all-to-all workload on a k=8 fat-tree (992 flows
// over first ECMP paths) and runs it to completion — arrivals, progressive
// filling, completions, the full hot path. The three variants pin the
// telemetry overhead contract: detached telemetry must be free (one nil
// check per event), attached telemetry must stay within a few percent.
//
//	go test -bench BenchmarkSimTelemetry ./internal/fluid
func benchWorkload(b *testing.B, tel *Telemetry) {
	ft, err := topo.NewFatTree(topo.Config{K: 8, HostsPerEdge: 1, HostCapacity: 40})
	if err != nil {
		b.Fatal(err)
	}
	n := ft.NumHosts()
	type work struct {
		path    topo.Path
		arrival float64
	}
	var flows []work
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			paths, err := ft.ECMPPaths(s, d)
			if err != nil {
				b.Fatal(err)
			}
			flows = append(flows, work{path: paths[(s+d)%len(paths)], arrival: float64(s%4) * 0.25})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := New(ft.Topology)
		sim.SetTelemetry(tel)
		for j, f := range flows {
			if err := sim.AddFlow(FlowID(j), 1e3, f.arrival, f.path); err != nil {
				b.Fatal(err)
			}
		}
		if err := sim.RunToCompletion(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTelemetryOff is the baseline: no telemetry attached.
func BenchmarkSimTelemetryOff(b *testing.B) { benchWorkload(b, nil) }

// BenchmarkSimTelemetryOn runs the same workload with live telemetry
// recording into a registry — compare against ...Off for the ≤5% contract.
func BenchmarkSimTelemetryOn(b *testing.B) {
	benchWorkload(b, NewTelemetry(obs.NewRegistry()))
}
