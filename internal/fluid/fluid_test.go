package fluid

import (
	"math"
	"math/rand"
	"testing"

	"sharebackup/internal/topo"
)

// line builds a linear topology h0 - s - h1 [- s2 - h2 ...] with given
// capacities and returns it plus the node IDs.
func line(t *testing.T, caps ...float64) (*topo.Topology, []topo.NodeID) {
	t.Helper()
	g := &topo.Topology{}
	nodes := []topo.NodeID{g.AddNode(topo.KindHost, 0, 0)}
	for i, c := range caps {
		n := g.AddNode(topo.KindHost, 0, i+1)
		if _, err := g.AddLink(nodes[len(nodes)-1], n, c); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	return g, nodes
}

func pathOf(t *testing.T, g *topo.Topology, nodes ...topo.NodeID) topo.Path {
	t.Helper()
	p := topo.Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		l := g.LinkBetween(nodes[i], nodes[i+1])
		if l == topo.NoLink {
			t.Fatalf("no link between %d and %d", nodes[i], nodes[i+1])
		}
		p.Links = append(p.Links, l)
	}
	return p
}

func TestSingleFlowCompletion(t *testing.T) {
	g, n := line(t, 10) // one link, capacity 10 B/s
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	if err := s.AddFlow(1, 100, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	f := s.Flow(1)
	if !f.Done() {
		t.Fatal("flow not done")
	}
	if math.Abs(f.Finish()-10) > 1e-9 {
		t.Errorf("finish = %v, want 10 (100 B at 10 B/s)", f.Finish())
	}
}

func TestFairSharing(t *testing.T) {
	g, n := line(t, 10)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	// Two equal flows share the link: each runs at 5 B/s.
	if err := s.AddFlow(1, 100, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(2, 50, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Flow 2 finishes at 10s (50 B at 5 B/s); flow 1 then speeds up:
	// 50 B remain at t=10, at 10 B/s -> finish 15.
	if got := s.Flow(2).Finish(); math.Abs(got-10) > 1e-9 {
		t.Errorf("flow 2 finish = %v, want 10", got)
	}
	if got := s.Flow(1).Finish(); math.Abs(got-15) > 1e-9 {
		t.Errorf("flow 1 finish = %v, want 15", got)
	}
}

func TestMaxMinTwoBottlenecks(t *testing.T) {
	// Classic max-min: flows A and B share link 1 (cap 1); B also crosses
	// link 2 (cap 0.2). B is bottlenecked at 0.2; A gets the residual 0.8.
	g, n := line(t, 1, 0.2)
	s := New(g)
	pa := pathOf(t, g, n[0], n[1])
	pb := pathOf(t, g, n[0], n[1], n[2])
	if err := s.AddFlow(1, 8, 0, pa); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(2, 2, 0, pb); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil { // compute rates at t=0
		t.Fatal(err)
	}
	if got := s.Flow(1).Rate(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("flow A rate = %v, want 0.8", got)
	}
	if got := s.Flow(2).Rate(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("flow B rate = %v, want 0.2", got)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// B: 2 B at 0.2 -> 10s. A: 8 B at 0.8 -> also 10s.
	if got := s.Flow(2).Finish(); math.Abs(got-10) > 1e-9 {
		t.Errorf("flow B finish = %v, want 10", got)
	}
	if got := s.Flow(1).Finish(); math.Abs(got-10) > 1e-9 {
		t.Errorf("flow A finish = %v, want 10", got)
	}
}

func TestLateArrival(t *testing.T) {
	g, n := line(t, 10)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	if err := s.AddFlow(1, 100, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(2, 30, 4, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Flow 1 alone until t=4 (40 B done), then 5 B/s each. Flow 2: 30 B at
	// 5 B/s -> finishes at 10. Flow 1: at t=10 it has 60-30=30 B left,
	// full rate -> finishes at 13.
	if got := s.Flow(2).Finish(); math.Abs(got-10) > 1e-9 {
		t.Errorf("flow 2 finish = %v, want 10", got)
	}
	if got := s.Flow(1).Finish(); math.Abs(got-13) > 1e-9 {
		t.Errorf("flow 1 finish = %v, want 13", got)
	}
}

func TestStallAndReroute(t *testing.T) {
	// Two parallel 2-hop routes between h0 and h2 via m1/m2.
	g := &topo.Topology{}
	h0 := g.AddNode(topo.KindHost, 0, 0)
	m1 := g.AddNode(topo.KindEdge, 0, 0)
	m2 := g.AddNode(topo.KindEdge, 0, 1)
	h2 := g.AddNode(topo.KindHost, 0, 1)
	for _, pair := range [][2]topo.NodeID{{h0, m1}, {m1, h2}, {h0, m2}, {m2, h2}} {
		if _, err := g.AddLink(pair[0], pair[1], 10); err != nil {
			t.Fatal(err)
		}
	}
	s := New(g)
	p1 := pathOf(t, g, h0, m1, h2)
	p2 := pathOf(t, g, h0, m2, h2)
	if err := s.AddFlow(1, 100, 0, p1); err != nil {
		t.Fatal(err)
	}
	// Run to t=5: 50 B transferred. Then the path fails; stall for 5s.
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPath(1, topo.Path{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	f := s.Flow(1)
	if !f.Stalled() {
		t.Error("flow should be stalled")
	}
	if math.Abs(f.Remaining()-50) > 1e-9 {
		t.Errorf("remaining = %v, want 50 (no progress while stalled)", f.Remaining())
	}
	// Reroute onto the second path; finish at t=15.
	if err := s.SetPath(1, p2); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if got := f.Finish(); math.Abs(got-15) > 1e-9 {
		t.Errorf("finish = %v, want 15", got)
	}
}

func TestRunToCompletionStalledForever(t *testing.T) {
	g, n := line(t, 1)
	s := New(g)
	if err := s.AddFlow(1, 1, 0, topo.Path{}); err != nil {
		t.Fatal(err)
	}
	_ = n
	if err := s.RunToCompletion(); err == nil {
		t.Error("RunToCompletion succeeded with a permanently stalled flow")
	}
}

func TestAddFlowValidation(t *testing.T) {
	g, n := line(t, 1)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	if err := s.AddFlow(1, 1, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(1, 1, 0, p); err == nil {
		t.Error("duplicate flow ID accepted")
	}
	if err := s.AddFlow(2, 0, 0, p); err == nil {
		t.Error("zero-byte flow accepted")
	}
	if err := s.AddFlow(3, math.NaN(), 0, p); err == nil {
		t.Error("NaN bytes accepted")
	}
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(4, 1, 2, p); err == nil {
		t.Error("arrival in the past accepted")
	}
	if err := s.Run(3); err == nil {
		t.Error("Run into the past accepted")
	}
	if err := s.SetPath(99, p); err == nil {
		t.Error("SetPath on unknown flow accepted")
	}
}

func TestOnCompleteCallback(t *testing.T) {
	g, n := line(t, 10)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	var order []FlowID
	s.OnComplete = func(f *Flow) { order = append(order, f.ID()) }
	if err := s.AddFlow(1, 100, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(2, 10, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("completion order = %v, want [2, 1]", order)
	}
}

func TestSetPathAfterDoneRejected(t *testing.T) {
	g, n := line(t, 10)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	if err := s.AddFlow(1, 10, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPath(1, p); err == nil {
		t.Error("SetPath on completed flow accepted")
	}
}

// TestCapacityConservationProperty checks, over random fat-tree workloads,
// that max-min rates never oversubscribe a link and that every connected
// flow gets a strictly positive rate (no starvation).
func TestCapacityConservationProperty(t *testing.T) {
	ft, err := topo.NewFatTree(topo.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		s := New(ft.Topology)
		nf := 1 + rng.Intn(40)
		for i := 0; i < nf; i++ {
			src := rng.Intn(ft.NumHosts())
			dst := rng.Intn(ft.NumHosts())
			if dst == src {
				dst = (dst + 1) % ft.NumHosts()
			}
			paths, err := ft.ECMPPaths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddFlow(FlowID(i), 1e9, 0, paths[rng.Intn(len(paths))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		usage := make([]float64, ft.NumLinks())
		for i := 0; i < nf; i++ {
			f := s.Flow(FlowID(i))
			if f.Rate() <= 0 {
				t.Fatalf("trial %d: flow %d starved (rate %v)", trial, i, f.Rate())
			}
			for _, l := range f.Path().Links {
				usage[l] += f.Rate()
			}
		}
		for l, u := range usage {
			if u > ft.Link(topo.LinkID(l)).Capacity*(1+1e-9) {
				t.Fatalf("trial %d: link %d oversubscribed: %v > %v", trial, l, u, ft.Link(topo.LinkID(l)).Capacity)
			}
		}
		// Work conservation: every flow is bottlenecked somewhere, i.e.
		// crosses at least one (nearly) fully utilized link.
		for i := 0; i < nf; i++ {
			f := s.Flow(FlowID(i))
			bottlenecked := false
			for _, l := range f.Path().Links {
				if usage[l] >= ft.Link(l).Capacity*(1-1e-6) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("trial %d: flow %d is not bottlenecked anywhere (rate %v); not max-min", trial, i, f.Rate())
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	g, n := line(t, 10, 5)
	s := New(g)
	p1 := pathOf(t, g, n[0], n[1])
	p2 := pathOf(t, g, n[0], n[1], n[2])
	if err := s.AddFlow(1, 100, 0, p1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(2, 100, 0, p2); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	u := s.Utilization()
	// Flow 2 is capped at 5 by the second link; flow 1 takes the rest of
	// the first link: utilization 10/10 and 5/5.
	if math.Abs(u[0]-1) > 1e-9 {
		t.Errorf("link 0 utilization = %v, want 1", u[0])
	}
	if math.Abs(u[1]-1) > 1e-9 {
		t.Errorf("link 1 utilization = %v, want 1", u[1])
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Utilization() {
		if v != 0 {
			t.Errorf("utilization %v after completion, want 0", v)
		}
	}
}

func TestRunIsResumable(t *testing.T) {
	g, n := line(t, 10)
	s := New(g)
	p := pathOf(t, g, n[0], n[1])
	if err := s.AddFlow(1, 100, 0, p); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := s.Run(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	f := s.Flow(1)
	if !f.Done() || math.Abs(f.Finish()-10) > 1e-9 {
		t.Errorf("piecewise run: done=%v finish=%v, want done at 10", f.Done(), f.Finish())
	}
}
