package fluid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sharebackup/internal/obs"
)

// Telemetry publishes the simulator's data-plane behaviour into an
// obs.Registry: flow lifecycle counters, flow-rate and flow-completion-time
// histograms, and link-utilization sampling. All handles are resolved once
// at construction, so the simulator's hot paths touch only lock-free
// counters/histograms — and a Simulator without telemetry attached pays a
// single nil check per event (the data-plane analogue of the event bus'
// "one atomic load when no sink" contract).
//
// Units: completion times are recorded in microseconds of simulated time,
// rates in milli-bytes/second (experiment capacities are O(1..100) bytes/s,
// so whole-byte buckets would round most rates to zero), utilization in
// permille (0..1000) of capacity.
type Telemetry struct {
	reg *obs.Registry

	FlowsStarted      *obs.Counter // flows admitted into the active set
	FlowsCompleted    *obs.Counter // flows drained to zero bytes
	Stalls            *obs.Counter // SetPath to an empty path (disconnection)
	Reroutes          *obs.Counter // SetPath to a different non-empty path
	RateRecomputes    *obs.Counter // progressive-filling passes (scoped or full)
	FullRecomputes    *obs.Counter // passes that fell back to the whole active set
	RateRecomputeWork *obs.Counter // flow×link incidences touched by filling passes

	ActiveFlows  *obs.Gauge // started, unfinished flows
	PendingFlows *obs.Gauge // scheduled, not yet arrived

	FCT           *obs.Histogram // flow completion time, µs of simulated time
	FlowRate      *obs.Histogram // max-min rate at completion, milli-bytes/s
	LinkUtil      *obs.Histogram // per-link utilization samples, permille
	RecomputeWork *obs.Histogram // flow×link incidences per filling pass

	MaxLinkUtil *obs.Gauge // worst link's utilization at last sample, permille

	// perLink caches per-link utilization gauges, created lazily on the
	// first SampleUtilization for each link ("fluid.link_util_permille.N").
	// Guarded by perLinkMu: one Telemetry may be shared by simulators on
	// different goroutines (counters and histograms are already atomic).
	perLinkMu sync.Mutex
	perLink   []*obs.Gauge
}

// NewTelemetry resolves all metric handles under the "fluid." prefix in reg
// (obs.DefaultRegistry when nil).
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		reg = obs.DefaultRegistry
	}
	return &Telemetry{
		reg:               reg,
		FlowsStarted:      reg.Counter("fluid.flows_started"),
		FlowsCompleted:    reg.Counter("fluid.flows_completed"),
		Stalls:            reg.Counter("fluid.stalls"),
		Reroutes:          reg.Counter("fluid.reroutes"),
		RateRecomputes:    reg.Counter("fluid.rate_recomputes"),
		FullRecomputes:    reg.Counter("fluid.rate_recomputes_full"),
		RateRecomputeWork: reg.Counter("fluid.rate_recompute_work"),
		ActiveFlows:       reg.Gauge("fluid.active_flows"),
		PendingFlows:      reg.Gauge("fluid.pending_flows"),
		FCT:               reg.Histogram("fluid.fct_us"),
		FlowRate:          reg.Histogram("fluid.flow_rate_mBps"),
		LinkUtil:          reg.Histogram("fluid.link_util_permille"),
		RecomputeWork:     reg.Histogram("fluid.recompute_work_per_pass"),
		MaxLinkUtil:       reg.Gauge("fluid.max_link_util_permille"),
	}
}

// defaultTel is the process-wide telemetry picked up by every New Simulator,
// set by the commands' -debug-addr wiring. Nil (the default) keeps the
// simulator instrumentation-free.
var defaultTel atomic.Pointer[Telemetry]

// SetDefaultTelemetry installs t as the telemetry every subsequently
// constructed Simulator samples into (nil disables). Existing simulators are
// unaffected.
func SetDefaultTelemetry(t *Telemetry) { defaultTel.Store(t) }

// DefaultTelemetry returns the telemetry installed by SetDefaultTelemetry,
// or nil.
func DefaultTelemetry() *Telemetry { return defaultTel.Load() }

// SetTelemetry attaches (or, with nil, detaches) telemetry on this simulator
// only, overriding the process default it was constructed with. Safe to call
// from any goroutine; the rest of Simulator stays single-goroutine-owned.
func (s *Simulator) SetTelemetry(t *Telemetry) { s.tel.Store(t) }

// Telemetry returns the simulator's attached telemetry (possibly nil).
func (s *Simulator) Telemetry() *Telemetry { return s.tel.Load() }

// linkGauge returns the cached per-link utilization gauge, creating it on
// first use. Called only from SampleUtilization, never from the hot path.
func (t *Telemetry) linkGauge(link int, n int) *obs.Gauge {
	t.perLinkMu.Lock()
	defer t.perLinkMu.Unlock()
	if len(t.perLink) < n {
		grown := make([]*obs.Gauge, n)
		copy(grown, t.perLink)
		t.perLink = grown
	}
	g := t.perLink[link]
	if g == nil {
		g = t.reg.Gauge(fmt.Sprintf("fluid.link_util_permille.%d", link))
		t.perLink[link] = g
	}
	return g
}

// SampleUtilization takes one utilization sample across every link: each
// link's current aggregate rate over capacity is recorded into the LinkUtil
// histogram and its per-link gauge, and the worst link into MaxLinkUtil.
// It is a no-op without telemetry. Sampling is pull-based — call it at the
// cadence the experiment cares about (e.g. after each Run step); it is
// deliberately not hooked into the rate recomputation so the simulator's
// inner loop stays telemetry-free.
func (s *Simulator) SampleUtilization() {
	tel := s.tel.Load()
	if tel == nil {
		return
	}
	s.utilBuf = s.UtilizationInto(s.utilBuf)
	util := s.utilBuf
	maxPm := int64(0)
	for link, u := range util {
		pm := int64(u*1000 + 0.5)
		tel.LinkUtil.Record(pm)
		tel.linkGauge(link, len(util)).Set(pm)
		if pm > maxPm {
			maxPm = pm
		}
	}
	tel.MaxLinkUtil.Set(maxPm)
}
