package fluid

import "sharebackup/internal/topo"

// The ripple pass (DESIGN.md §15). A dirty event — one completion, one
// reroute — usually perturbs a tiny neighbourhood, but the link-sharing
// component containing it can be almost the whole fabric (an all-to-all
// workload is one giant component), which made the component-scoped engine
// refill thousands of flows to absorb a two-flow change. The ripple pass
// fills only the flows on the dirty links, holding every other flow frozen
// at its current rate, and then *proves* the result is the global max-min
// allocation by checking the Bertsekas–Gallager bottleneck condition
// locally:
//
//	a rate vector is max-min fair iff every flow has a bottleneck link —
//	a saturated link on which its rate is maximal.
//
// Two check families close the proof over the scoped set S:
//
//   - (a) every member of S must have a bottleneck among its own links
//     (all of which are in links(S), so the verification sweep has their
//     exact post-fill sums and maxima). A member beaten everywhere adopts
//     the faster background flows on its saturated links into S.
//   - (b) every background flow on a *changed* link of links(S) must keep a
//     bottleneck somewhere. Its links inside links(S) use the sweep's
//     results; its links outside carry no members — their flow sets and
//     rates are exactly what they were before the pass, when the global
//     allocation was valid — so the maintained linkRate aggregate plus a
//     list scan answers saturation/maximality there. Links(S) entries whose
//     member rates did not change (vChg) need no background checks at all:
//     nothing about them moved.
//
// Failed checks expand S deterministically and refill; the expansion
// strictly grows S, so the loop terminates, and it is capped (rounds and
// |S| vs the active set) with the component decomposition as the
// always-correct fallback. Correctness never rests on the checks being
// tight — a spuriously failed check only costs an expansion round — and the
// differential fuzz suite replays thousands of schedules through this path
// against the reference engine.
const (
	// rippleMaxRounds bounds fill+verify rounds before falling back to
	// component decomposition; each round strictly grows the member set, so
	// a pass needing many rounds is drifting toward the component anyway.
	rippleMaxRounds = 6
	// rippleTol is the relative tolerance of the optimality verification.
	// Deliberately much looser than satTol: failing a check spuriously only
	// costs an expansion round (performance), while the differential fuzz
	// suite would catch a missed expansion (correctness), so the bias is
	// toward expanding.
	rippleTol = 1e-10
)

// ripple attempts the scoped pass. It returns false — leaving all flow
// rates prepared but unsealed — when the caller should fall back to
// component decomposition; every flow whose rate it dirtied is on or
// adjacent to a dirty link, so the seeded BFS re-covers them.
func (s *Simulator) ripple(tel *Telemetry) bool {
	if len(s.active) == 0 {
		return true
	}
	s.gen++
	gen := s.gen
	flows := s.compFlows[:0]
	links := s.compLinks[:0]
	// S starts as every flow on a dirty link. (Departed flows' links are
	// dirty, so the flows left behind — the ones whose rates can rise —
	// are members; arrivals and reroute targets are on dirty links
	// directly.)
	for _, seed := range s.dirtySeeds {
		for _, ref := range s.linkFlows[seed] {
			fi := ref.fi
			if s.fVisit[fi] == gen {
				continue
			}
			s.fVisit[fi] = gen
			s.prepare(fi)
			flows = append(flows, fi)
		}
	}
	if len(flows) == 0 {
		// Dirty links with nothing on them (last flow on a rack finished):
		// no rate can change, and linkRate was zeroed by the eager detach.
		s.compFlows, s.compLinks = flows, links
		return true
	}
	if 2*len(flows) > len(s.active) {
		// Not "scoped" in any useful sense; decompose instead. No links
		// were marked yet, so there is nothing to unwind.
		s.compFlows, s.compLinks = flows, links
		return false
	}

	var work int64
	bail := func() bool {
		for _, l := range links {
			s.rIdx[l] = -1
		}
		s.compFlows, s.compLinks = flows, links
		s.stats.RippleFallbacks++
		return false
	}

	sc := s.scratchFor(0)
	for round := 0; ; round++ {
		// The background-mode fill engages every member link (appending new
		// ones to links with rIdx assigned), computes residuals from the
		// maintained linkRate aggregate, and leaves the verification arrays
		// populated: vSum = background sum + member rates, vMax = member
		// maximum, vChg = some member moved, vBG = -1 (no background) or
		// bgUnknown (background present, maximum resolved lazily below).
		w, filled := s.fillRates(flows, sc, gen, true, &links)
		work += w
		if !filled {
			return bail() // defensive fill break: arrays are inconsistent
		}
		vSum := s.vSum
		vMax := s.vMax
		vBG := s.vBG
		vSat := s.vSat
		vChg := s.vChg
		work += int64(len(links))
		for i, l := range links {
			c := s.caps[l]
			vSat[i] = vSum[i] >= c-rippleTol*(c+1)
		}

		// (a) every member needs a bottleneck link: a saturated link where
		// neither a member (vMax) nor a background flow (vBG, resolved
		// lazily) outruns it.
		roundStart := len(flows)
		expanded := false
		for k := 0; k < roundStart; k++ {
			fi := flows[k]
			off, n := s.fOff[fi], s.fNL[fi]
			if n == 0 {
				continue // stalled member; rate 0 by construction
			}
			r := s.fRate[fi]
			rtol := r + rippleTol*(r+1)
			ok := false
			for j := int32(0); j < n; j++ {
				l := s.linkArena[off+j]
				i := s.rIdx[l]
				if !vSat[i] || vMax[i] > rtol {
					continue
				}
				b := vBG[i]
				if b == bgUnknown {
					b = s.lazyBG(i, l, gen, &work)
				}
				if b <= rtol {
					// Certified here: record the certificate so later passes
					// can re-validate this flow as background in O(1).
					s.fCert[fi] = l
					ok = true
					break
				}
			}
			if ok {
				continue
			}
			// Beaten everywhere it saturates: adopt the background flows
			// outrunning it there — they hold capacity this member deserves.
			// A beater that is already generation-marked was adopted by an
			// earlier member of this same loop; the set has already grown,
			// the refill will re-judge this member, and that is success,
			// not a dead end — hence the roundStart growth check below.
			found := false
			for j := int32(0); j < n; j++ {
				l := s.linkArena[off+j]
				i := s.rIdx[l]
				if !vSat[i] {
					continue
				}
				b := vBG[i]
				if b == bgUnknown {
					b = s.lazyBG(i, l, gen, &work)
				}
				if b <= r {
					continue
				}
				for _, ref := range s.linkFlows[l] {
					fj := ref.fi
					if s.fVisit[fj] == gen || s.fRate[fj] <= r {
						continue
					}
					s.fVisit[fj] = gen
					s.prepare(fj)
					flows = append(flows, fj)
					found = true
				}
				work += int64(len(s.linkFlows[l]))
			}
			if !found && len(flows) == roundStart {
				// No background flow explains the failure and nothing else
				// grew the set this round — a numeric corner this proof
				// can't close; decompose instead.
				return bail()
			}
			expanded = true
		}

		// (b) background flows on changed links must keep a bottleneck.
		// Skipped when (a) already expanded: the refill re-verifies
		// everything anyway. vBG == -1 means the link had no background at
		// fill time, so there is nothing to check.
		if !expanded {
			for i, l := range links {
				if !vChg[i] || vBG[i] == -1 {
					continue
				}
				for _, ref := range s.linkFlows[l] {
					fj := ref.fi
					if s.fVisit[fj] == gen {
						continue
					}
					if s.bgStillBottlenecked(fj, gen, &work) {
						continue
					}
					s.fVisit[fj] = gen
					s.prepare(fj)
					flows = append(flows, fj)
					expanded = true
				}
				work += int64(len(s.linkFlows[l]))
			}
		}

		if !expanded {
			break // proof closed: the scoped fill is the global allocation
		}
		s.stats.RippleExpansions++
		if round+1 >= rippleMaxRounds || 2*len(flows) > len(s.active) {
			return bail()
		}
	}

	// Seal: linkRate from the verification sums, finish events for changed
	// rates, scratch invariants restored.
	for i, l := range links {
		s.linkRate[l] = s.vSum[i]
		s.rIdx[l] = -1
	}
	s.sealFlows(flows)
	s.stats.RipplePasses++
	s.compFlows, s.compLinks = flows, links
	s.finishPass(work, tel)
	return true
}

// lazyBG resolves and caches the fastest background (non-member) rate on
// links(S) entry i / link l. It is the only place the ripple checks walk a
// full per-link flow list, and it runs only when a check is inconclusive
// from the member-side arrays alone. Adoption during the same round can
// shrink the background set, so the cached value reflects the background as
// of the walk — the growth-excused bail in check (a) is what keeps that
// sound.
func (s *Simulator) lazyBG(i int32, l topo.LinkID, gen uint64, work *int64) float64 {
	b := -1.0
	for _, ref := range s.linkFlows[l] {
		if s.fVisit[ref.fi] != gen {
			if r := s.fRate[ref.fi]; r > b {
				b = r
			}
		}
	}
	*work += int64(len(s.linkFlows[l]))
	s.vBG[i] = b
	return b
}

// bgStillBottlenecked is check (b) for one background flow on a changed
// link: does it still have a saturated link on which its rate is maximal?
//
// The certificate fast path usually answers in O(1). fCert names a link
// where the flow was verified saturated-and-maximal the last time that
// link's allocation was sealed (freeze link or check (a) link), and a
// link's allocation only changes in a pass that seals it — a pass in which
// every flow on it is either a member (re-certified at freeze/(a)) or a
// checked background flow (re-certified right here). So between passes the
// certificate stays truthful on its own:
//
//   - certificate inside links(S): the verification arrays re-validate it
//     against this pass's fresh sums/maxima (the one case where it can have
//     just changed).
//   - certificate outside links(S): no member touches it, so its flow set
//     and every rate on it are exactly what they were when the certificate
//     was written; the linkRate saturation gate is a defensive re-check and
//     no list walk is needed.
//
// A failed or missing certificate falls back to the full link scan, which
// re-certifies on success. A spurious fast-path failure only costs that
// walk; the fuzz suite (which replays schedules against the reference
// engine) is the backstop for the invariant itself.
func (s *Simulator) bgStillBottlenecked(fi int32, gen uint64, work *int64) bool {
	r := s.fRate[fi]
	rtol := r + rippleTol*(r+1)
	if lc := s.fCert[fi]; lc >= 0 {
		if i := s.rIdx[lc]; i >= 0 {
			if s.vSat[i] && s.vMax[i] <= rtol {
				b := s.vBG[i]
				if b == bgUnknown {
					b = s.lazyBG(i, lc, gen, work)
				}
				if b <= rtol {
					return true
				}
			}
		} else {
			c := s.caps[lc]
			if s.linkRate[lc] >= c-rippleTol*(c+1) {
				return true
			}
		}
	}

	// Full scan: links inside links(S) use the verification arrays (with the
	// background maximum resolved lazily — it includes this flow itself, so
	// a background-maximal flow passes); links outside carry no members, so
	// their state is exactly pre-pass — the maintained linkRate aggregate
	// gates a list scan.
	off, n := s.fOff[fi], s.fNL[fi]
	for j := int32(0); j < n; j++ {
		l := s.linkArena[off+j]
		if i := s.rIdx[l]; i >= 0 {
			if !s.vSat[i] || s.vMax[i] > rtol {
				continue
			}
			b := s.vBG[i]
			if b == bgUnknown {
				b = s.lazyBG(i, l, gen, work)
			}
			if b <= rtol {
				s.fCert[fi] = l
				return true
			}
			continue
		}
		c := s.caps[l]
		if s.linkRate[l] < c-rippleTol*(c+1) {
			continue
		}
		mx := 0.0
		for _, ref := range s.linkFlows[l] {
			if rr := s.fRate[ref.fi]; rr > mx {
				mx = rr
			}
		}
		*work += int64(len(s.linkFlows[l]))
		if mx <= rtol {
			s.fCert[fi] = l
			return true
		}
	}
	return false
}
