package fluid

import (
	"math"
	"testing"

	"sharebackup/internal/topo"
)

// pairField builds n disjoint host-pair links (2n hosts, n links of the
// given capacity) and returns the topology plus one path per pair.
func pairField(t testing.TB, n int, cap float64) (*topo.Topology, []topo.Path) {
	t.Helper()
	g := &topo.Topology{}
	paths := make([]topo.Path, 0, n)
	for i := 0; i < n; i++ {
		a := g.AddNode(topo.KindHost, 0, 2*i)
		b := g.AddNode(topo.KindHost, 0, 2*i+1)
		l, err := g.AddLink(a, b, cap)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, topo.Path{Nodes: []topo.NodeID{a, b}, Links: []topo.LinkID{l}})
	}
	return g, paths
}

// TestCohortCompletionNotQuadratic pins the tentpole's complexity win with
// work counters, not wall-clock: n disjoint pairs, two flows each, every
// flow completing at a distinct time. The seed engine recomputed all 2n
// rates on each of ~2n completions — Θ(n²) flow×link incidences — and
// spliced the active set by pointer equality. The incremental engine must
// keep each completion's recompute inside its own 2-flow component, so
// total recompute work stays O(n).
func TestCohortCompletionNotQuadratic(t *testing.T) {
	const n = 600
	g, paths := pairField(t, n, 10)
	s := New(g)
	for i := 0; i < n; i++ {
		// Distinct sizes: the pair's flows finish at distinct times, and no
		// two pairs finish together, so completions cannot batch.
		if err := s.AddFlow(FlowID(2*i), 100+float64(i), 0, paths[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.AddFlow(FlowID(2*i+1), 300+2*float64(i), 0, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// The initial arrival batch dirties every link at once and legitimately
	// falls back to one full pass (2n incidences); every later pass must be
	// component-sized. Budget: one full pass + ~2n scoped passes of a few
	// incidences each. Quadratic behaviour would cost ~2n²=720k.
	budget := int64(30 * n)
	if st.RecomputeWork > budget {
		t.Fatalf("recompute work = %d incidences for n=%d pairs, want <= %d (scoped); quadratic would be ~%d",
			st.RecomputeWork, n, budget, 2*n*n)
	}
	if st.FullRecomputes > 2 {
		t.Errorf("full recomputes = %d, want <= 2 (only the initial mass arrival)", st.FullRecomputes)
	}
	if st.HeapPops != 2*n {
		t.Errorf("heap pops = %d, want %d (one per completion)", st.HeapPops, 2*n)
	}
	// Sanity: the simulation itself is right — pair i's flows share the
	// link then the survivor speeds up.
	f0, f1 := s.Flow(0), s.Flow(1)
	if math.Abs(f0.Finish()-20) > 1e-9 { // 100 B at 5 B/s
		t.Errorf("flow 0 finish = %v, want 20", f0.Finish())
	}
	if math.Abs(f1.Finish()-40) > 1e-9 { // 100 B at 5, then 200 B at 10
		t.Errorf("flow 1 finish = %v, want 40", f1.Finish())
	}
}

// TestScopedMatchesFullExact replays an identical schedule — staggered
// arrivals, a mid-run reroute, a stall and recovery — through the scoped
// engine and the forced-full reference on a k=4 fat-tree, comparing every
// FCT. Unlike the randomized differential test this one is a readable,
// deterministic scenario that's easy to debug when it breaks.
func TestScopedMatchesFullExact(t *testing.T) {
	build := func(full bool) *Simulator {
		// Rack-local traffic (all pairs within each edge switch) gives the
		// link-sharing graph per-rack components; two cross-pod flows
		// temporarily bridge their racks through the spine.
		ft, err := topo.NewFatTree(topo.Config{K: 4, HostsPerEdge: 4, HostCapacity: 40})
		if err != nil {
			t.Fatal(err)
		}
		s := New(ft.Topology)
		s.ForceFullRecompute(full)
		id := 0
		add := func(src, dst int, bytes, arrival float64, variant int) {
			paths, err := ft.ECMPPaths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddFlow(FlowID(id), bytes, arrival, paths[variant%len(paths)]); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for pod := 0; pod < ft.NumPods(); pod++ {
			for e := 0; e < 2; e++ {
				hosts := ft.HostsOfEdge(pod, e)
				for _, src := range hosts {
					for _, dst := range hosts {
						if src != dst {
							add(src, dst, 500+float64(50*(id%5)), float64(id%7)*0.3, 0)
						}
					}
				}
			}
		}
		crossA := FlowID(id)
		add(0, 17, 2000, 0.1, 0) // pod 0 -> pod 2
		add(9, 25, 2000, 0.2, 1) // pod 1 -> pod 3
		// Mid-run storm: reroute one cross flow onto an alternate spine
		// path, stall a rack flow for a while, then recover it.
		if err := s.Run(30); err != nil {
			t.Fatal(err)
		}
		pA, err := ft.ECMPPaths(0, 17)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Flow(crossA).Done() {
			if err := s.SetPath(crossA, pA[1%len(pA)]); err != nil {
				t.Fatal(err)
			}
		}
		if !s.Flow(9).Done() {
			if err := s.SetPath(9, topo.Path{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(60); err != nil {
			t.Fatal(err)
		}
		if !s.Flow(9).Done() {
			p9, err := ft.ECMPPaths(3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetPath(9, p9[0]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunToCompletion(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	inc, full := build(false), build(true)
	if inc.ActiveCount() != 0 || full.ActiveCount() != 0 {
		t.Fatal("flows left active")
	}
	for id := FlowID(0); ; id++ {
		fi, ff := inc.Flow(id), full.Flow(id)
		if fi == nil || ff == nil {
			break
		}
		tol := 64 * relEps * (math.Abs(ff.Finish()) + 1)
		if math.Abs(fi.Finish()-ff.Finish()) > tol {
			t.Errorf("flow %d: incremental finish %v, full finish %v (Δ=%g > %g)",
				id, fi.Finish(), ff.Finish(), math.Abs(fi.Finish()-ff.Finish()), tol)
		}
	}
	// The scoped engine must actually have scoped something on this
	// workload (the k=4 fabric is one component while saturated, but the
	// draining tail breaks apart).
	si, sf := inc.Stats(), full.Stats()
	if si.FullRecomputes >= si.Recomputes {
		t.Errorf("scoped engine never scoped: %d full of %d passes", si.FullRecomputes, si.Recomputes)
	}
	if sf.FullRecomputes != sf.Recomputes {
		t.Errorf("reference engine scoped: %d full of %d passes", sf.FullRecomputes, sf.Recomputes)
	}
	if si.RecomputeWork >= sf.RecomputeWork {
		t.Errorf("scoped work %d >= full work %d; incremental engine saved nothing",
			si.RecomputeWork, sf.RecomputeWork)
	}
}

// TestUtilizationInto pins the reusable-buffer contract: the returned slice
// aliases the input when capacity suffices, and matches Utilization.
func TestUtilizationInto(t *testing.T) {
	g, paths := pairField(t, 3, 10)
	s := New(g)
	for i, p := range paths {
		if err := s.AddFlow(FlowID(i), 100, 0, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, 16)
	got := s.UtilizationInto(buf)
	if &got[0] != &buf[:1][0] {
		t.Error("UtilizationInto reallocated despite sufficient capacity")
	}
	want := s.Utilization()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("util[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestHeapStaysIndexed: a reroute storm re-keys finish events en masse; the
// indexed heap must hold at most one entry per active flow (no stale debris)
// and keep the position column consistent.
func TestHeapStaysIndexed(t *testing.T) {
	g, paths := pairField(t, 4, 10)
	s := New(g)
	for i, p := range paths {
		if err := s.AddFlow(FlowID(i), 1e6, 0, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	// Thrash: each stall removes the flow's finish event, each recovery
	// re-schedules it — thousands of re-keys over the same small flow set.
	for round := 0; round < 5000; round++ {
		id := FlowID(round % len(paths))
		if err := s.SetPath(id, topo.Path{}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetPath(id, paths[id]); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(s.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.fin.Len(); got > len(s.active) {
		t.Fatalf("finish heap holds %d entries for %d active flows; stale entries leaked",
			got, len(s.active))
	}
	for p, e := range s.fin {
		if s.fHeapPos[e.fi] != int32(p) {
			t.Fatalf("heap entry %d (flow slot %d) has fHeapPos %d", p, e.fi, s.fHeapPos[e.fi])
		}
	}
	for fi, p := range s.fHeapPos {
		if p >= 0 && s.fin[p].fi != int32(fi) {
			t.Fatalf("fHeapPos[%d] = %d but heap entry holds slot %d", fi, p, s.fin[p].fi)
		}
	}
}
