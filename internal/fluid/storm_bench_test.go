package fluid

import (
	"math/rand"
	"testing"

	"sharebackup/internal/topo"
)

// Storm benchmarks exercise the engine at the scales the ROADMAP targets:
// k=16 and k=32 fabrics carrying 10k+ staggered flows with mid-run reroute
// storms. Traffic is ~85% rack-local — the realistic skew, and the regime
// where component scoping pays (all-to-all traffic is one link-sharing
// component, so scoping degenerates to full passes by design). Each
// benchmark has an Incremental and a Full variant so the speedup and the
// recompute-work ratio are directly readable from `go test -bench Storm`.
//
//	go test -bench 'BenchmarkStorm' -benchtime 1x ./internal/fluid

type stormAdd struct {
	id      FlowID
	bytes   float64
	arrival float64
	path    topo.Path
}

type stormWave struct {
	at       float64
	reroutes []stormAdd // id + replacement path; bytes/arrival unused
}

// buildStormWorkload generates the deterministic flow set and reroute waves
// once per benchmark; the timed loop only replays them.
func buildStormWorkload(tb testing.TB, k, hostsPerEdge, flowsPerHost int) (*topo.FatTree, []stormAdd, []stormWave) {
	tb.Helper()
	ft, err := topo.NewFatTree(topo.Config{K: k, HostsPerEdge: hostsPerEdge, HostCapacity: 40})
	if err != nil {
		tb.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	n := ft.NumHosts()
	per := hostsPerEdge
	perPod := (k / 2) * per
	adds := make([]stormAdd, 0, n*flowsPerHost)
	var crossIDs []FlowID
	for i := 0; i < n*flowsPerHost; i++ {
		src := i % n
		var dst int
		if per > 1 && r.Float64() < 0.85 {
			// Rack-local: another host under the same edge switch.
			base := (src / per) * per
			dst = base + r.Intn(per)
			for dst == src {
				dst = base + r.Intn(per)
			}
		} else {
			// Pod-local cross-rack: multi-path (reroutable through the
			// pod's aggs) but confined to the pod, so the link-sharing
			// components stay pod-sized. Inter-pod traffic would glue the
			// whole fabric into one component through the core and turn
			// every scoped pass into a full fallback — a regime the Full
			// variants already measure.
			base := (src / perPod) * perPod
			dst = base + r.Intn(perPod)
			for dst == src || dst/per == src/per {
				dst = base + r.Intn(perPod)
			}
		}
		paths, err := ft.ECMPPaths(src, dst)
		if err != nil {
			tb.Fatal(err)
		}
		a := stormAdd{
			id:      FlowID(i),
			bytes:   500 + r.Float64()*1500,
			arrival: r.Float64() * 10,
			path:    paths[r.Intn(len(paths))],
		}
		adds = append(adds, a)
		if len(paths) > 1 {
			crossIDs = append(crossIDs, a.id)
		}
	}
	// Three storm waves, each rerouting a batch of multi-path flows onto a
	// different ECMP choice — the failure-recovery traffic pattern the
	// paper's control plane generates.
	waves := make([]stormWave, 3)
	for w := range waves {
		waves[w].at = 4 + 2*float64(w)
		batch := 256
		if batch > len(crossIDs) {
			batch = len(crossIDs)
		}
		for b := 0; b < batch; b++ {
			id := crossIDs[r.Intn(len(crossIDs))]
			src := int(id) % n
			paths, err := ft.ECMPPaths(src, hostOfPath(ft, adds[id].path))
			if err != nil {
				tb.Fatal(err)
			}
			waves[w].reroutes = append(waves[w].reroutes, stormAdd{
				id:   id,
				path: paths[r.Intn(len(paths))],
			})
		}
	}
	return ft, adds, waves
}

// hostOfPath recovers the destination host's global index from a path (its
// last node is the destination host).
func hostOfPath(ft *topo.FatTree, p topo.Path) int {
	last := p.Nodes[len(p.Nodes)-1]
	return ft.Node(last).Index
}

func runStormBench(b *testing.B, k, hostsPerEdge int, full bool) {
	ft, adds, waves := buildStormWorkload(b, k, hostsPerEdge, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var work, events int64
	for i := 0; i < b.N; i++ {
		sim := New(ft.Topology)
		sim.ForceFullRecompute(full)
		for _, a := range adds {
			if err := sim.AddFlow(a.id, a.bytes, a.arrival, a.path); err != nil {
				b.Fatal(err)
			}
		}
		events += int64(len(adds))
		for _, wv := range waves {
			if err := sim.Run(wv.at); err != nil {
				b.Fatal(err)
			}
			for _, rr := range wv.reroutes {
				if sim.Flow(rr.id).Done() {
					continue
				}
				if err := sim.SetPath(rr.id, rr.path); err != nil {
					b.Fatal(err)
				}
				events++
			}
		}
		if err := sim.RunToCompletion(); err != nil {
			b.Fatal(err)
		}
		st := sim.Stats()
		work += st.RecomputeWork
		events += st.HeapPops
	}
	b.StopTimer()
	b.ReportMetric(float64(work)/float64(b.N), "work/op")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkStormK16Incremental(b *testing.B) { runStormBench(b, 16, 4, false) }
func BenchmarkStormK16Full(b *testing.B)        { runStormBench(b, 16, 4, true) }
func BenchmarkStormK32Incremental(b *testing.B) { runStormBench(b, 32, 1, false) }
func BenchmarkStormK32Full(b *testing.B)        { runStormBench(b, 32, 1, true) }
