package fluid

import (
	"testing"

	"sharebackup/internal/obs"
	"sharebackup/internal/topo"
)

// twoLinkTopo builds host -> switch -> host with unit capacities.
func twoLinkTopo(t *testing.T) (*topo.Topology, topo.Path) {
	t.Helper()
	g := &topo.Topology{}
	h1 := g.AddNode(topo.KindHost, 0, 0)
	sw := g.AddNode(topo.KindEdge, 0, 0)
	h2 := g.AddNode(topo.KindHost, 0, 1)
	l1, err := g.AddLink(h1, sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g.AddLink(sw, h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, topo.Path{Nodes: []topo.NodeID{h1, sw, h2}, Links: []topo.LinkID{l1, l2}}
}

func TestTelemetrySamplesLifecycle(t *testing.T) {
	g, path := twoLinkTopo(t)
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)

	sim := New(g)
	if sim.Telemetry() != nil {
		t.Fatal("fresh simulator has telemetry without SetDefaultTelemetry")
	}
	sim.SetTelemetry(tel)

	// Two flows sharing the path: 2 bytes each at fair rate 1/2 → FCT 4s.
	if err := sim.AddFlow(1, 2, 0, path); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddFlow(2, 2, 0, path); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	sim.SampleUtilization()
	if got := tel.ActiveFlows.Value(); got != 2 {
		t.Fatalf("active flows gauge = %d, want 2", got)
	}
	if got := tel.MaxLinkUtil.Value(); got != 1000 {
		t.Fatalf("max link util = %d permille, want 1000 (saturated)", got)
	}
	if got := reg.Gauge("fluid.link_util_permille.0").Value(); got != 1000 {
		t.Fatalf("per-link gauge = %d, want 1000", got)
	}
	if tel.LinkUtil.Count() != int64(g.NumLinks()) {
		t.Fatalf("link util samples = %d, want %d", tel.LinkUtil.Count(), g.NumLinks())
	}

	// Stall one flow, then reroute it back.
	if err := sim.SetPath(2, topo.Path{}); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetPath(2, path); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunToCompletion(); err != nil {
		t.Fatal(err)
	}

	if got := tel.FlowsStarted.Value(); got != 2 {
		t.Fatalf("flows started = %d, want 2", got)
	}
	if got := tel.FlowsCompleted.Value(); got != 2 {
		t.Fatalf("flows completed = %d, want 2", got)
	}
	if got := tel.Stalls.Value(); got != 1 {
		t.Fatalf("stalls = %d, want 1", got)
	}
	if got := tel.Reroutes.Value(); got != 1 {
		t.Fatalf("reroutes = %d, want 1", got)
	}
	if got := tel.ActiveFlows.Value(); got != 0 {
		t.Fatalf("active flows after completion = %d, want 0", got)
	}
	if tel.FCT.Count() != 2 {
		t.Fatalf("FCT samples = %d, want 2", tel.FCT.Count())
	}
	// Flow 1 ran at rate 1/2 until flow 2 stalled at t=1s... regardless of
	// the exact schedule, both FCTs are in (0s, 10s] in µs.
	if min, max := tel.FCT.Min(), tel.FCT.Max(); min <= 0 || max > 10_000_000 {
		t.Fatalf("FCT range [%d, %d] µs implausible", min, max)
	}
	if tel.RateRecomputes.Value() == 0 {
		t.Fatal("rate recomputes not counted")
	}
}

func TestDefaultTelemetryPickup(t *testing.T) {
	g, path := twoLinkTopo(t)
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	SetDefaultTelemetry(tel)
	defer SetDefaultTelemetry(nil)

	sim := New(g)
	if sim.Telemetry() != tel {
		t.Fatal("New did not pick up the default telemetry")
	}
	if err := sim.AddFlow(1, 1, 0, path); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("fluid.flows_completed").Value() != 1 {
		t.Fatal("default telemetry saw no completion")
	}

	SetDefaultTelemetry(nil)
	if New(g).Telemetry() != nil {
		t.Fatal("SetDefaultTelemetry(nil) did not disable pickup")
	}
}

func TestNewTelemetryNilRegistryUsesDefault(t *testing.T) {
	tel := NewTelemetry(nil)
	if tel.FCT != obs.DefaultRegistry.Histogram("fluid.fct_us") {
		t.Fatal("nil registry did not resolve against obs.DefaultRegistry")
	}
}
