package fluid

// finEvent is one scheduled completion: the exact finish time implied by
// the flow's rate at the epoch the event was pushed. Rate changes bump the
// flow's epoch instead of searching the heap, and mismatched entries are
// dropped when they surface — classic lazy invalidation, which keeps every
// rate change O(log n) instead of O(n).
type finEvent struct {
	t     float64
	epoch uint32
	f     *Flow
}

// finHeap is a hand-rolled binary min-heap of finish events, ordered by
// time then flow ID (the ID tie-break keeps cohort completion order
// deterministic and ID-sorted, matching the seed engine's scan order).
// Hand-rolled rather than container/heap so push/pop stay inlineable and
// allocation-free on the hot path.
type finHeap []finEvent

func (h finHeap) Len() int { return len(h) }

func (h finHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].f.ID < h[j].f.ID
}

func (h *finHeap) push(e finEvent) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

// popHead removes the minimum entry. Callers peek h[0] first; popHead
// exists separately so the peek-discard loops don't copy entries around
// when the head is kept.
func (h *finHeap) popHead() {
	a := *h
	n := len(a) - 1
	a[0] = a[n]
	a[n] = finEvent{}
	a = a[:n]
	*h = a
	h.siftDown(0)
}

func (h *finHeap) siftDown(i int) {
	a := *h
	n := len(a)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && a.less(c+1, c) {
			c++
		}
		if !a.less(c, i) {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}

// compact drops every invalidated entry in one pass and re-heapifies,
// returning how many entries were discarded. Called when the heap is
// dominated by stale debris (reroute storms invalidate aggressively).
func (h *finHeap) compact() int {
	a := *h
	kept := a[:0]
	for _, e := range a {
		if !e.f.done && e.epoch == e.f.epoch {
			kept = append(kept, e)
		}
	}
	dropped := len(a) - len(kept)
	for i := len(kept); i < len(a); i++ {
		a[i] = finEvent{}
	}
	*h = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return dropped
}
