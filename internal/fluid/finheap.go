package fluid

// finEvent is one scheduled completion: the exact finish time implied by
// the flow's rate at the last seal. The heap is *indexed*: the fHeapPos
// column maps each flow slot to its heap position, so a rate change moves
// the flow's one entry in place (O(log n)) instead of abandoning it. The
// heap therefore never holds stale entries — at most one event per active
// flow, no validity checks on pop, no compaction sweeps. The event carries
// the flow's slot and ID by value (24 bytes, no pointers), so heap
// operations touch the flow columns only to maintain fHeapPos.
type finEvent struct {
	t  float64
	id FlowID
	fi int32
}

// finHeap is a hand-rolled indexed binary min-heap of finish events, ordered
// by time then flow ID (the ID tie-break keeps cohort completion order
// deterministic and ID-sorted, matching the seed engine's scan order).
// Hand-rolled rather than container/heap so the sift loops stay inlineable
// and allocation-free on the hot path; the sift helpers live on Simulator
// because every swap must mirror into the fHeapPos column.
type finHeap []finEvent

func (h finHeap) Len() int { return len(h) }

func (h finHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].id < h[j].id
}

// finSchedule inserts — or, if the flow already has an event, re-keys in
// place — fi's finish event at time t.
func (s *Simulator) finSchedule(fi int32, t float64) {
	if p := int(s.fHeapPos[fi]); p >= 0 {
		old := s.fin[p].t
		s.fin[p].t = t
		if t < old {
			s.finUp(p)
		} else if t > old {
			s.finDown(p)
		}
		return
	}
	s.fHeapPos[fi] = int32(len(s.fin))
	s.fin = append(s.fin, finEvent{t: t, id: s.fID[fi], fi: fi})
	s.finUp(len(s.fin) - 1)
}

// finRemove deletes fi's finish event if one is scheduled (rate dropped to
// zero: stalled, or starved by background).
func (s *Simulator) finRemove(fi int32) {
	p := int(s.fHeapPos[fi])
	if p < 0 {
		return
	}
	s.fHeapPos[fi] = -1
	h := s.fin
	n := len(h) - 1
	if p != n {
		h[p] = h[n]
		s.fHeapPos[h[p].fi] = int32(p)
		s.fin = h[:n]
		if !s.finDown(p) {
			s.finUp(p)
		}
	} else {
		s.fin = h[:n]
	}
}

// finPopHead removes the minimum entry; callers peek s.fin[0] first.
func (s *Simulator) finPopHead() {
	h := s.fin
	n := len(h) - 1
	s.fHeapPos[h[0].fi] = -1
	if n > 0 {
		h[0] = h[n]
		s.fHeapPos[h[0].fi] = 0
	}
	s.fin = h[:n]
	s.finDown(0)
}

func (s *Simulator) finUp(i int) {
	h := s.fin
	pos := s.fHeapPos
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		pos[h[i].fi] = int32(i)
		pos[h[parent].fi] = int32(parent)
		i = parent
	}
}

// finDown reports whether the entry moved, so finRemove's replacement entry
// can try sifting up only when it did not sink.
func (s *Simulator) finDown(i int) bool {
	h := s.fin
	pos := s.fHeapPos
	n := len(h)
	i0 := i
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		pos[h[i].fi] = int32(i)
		pos[h[c].fi] = int32(c)
		i = c
	}
	return i > i0
}
