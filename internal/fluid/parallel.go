package fluid

import (
	"sync"
	"sync/atomic"
)

// Component decomposition and the intra-trial worker pool (DESIGN.md §15).
//
// Max-min allocations decompose exactly over link-sharing components:
// progressive filling inside one component never reads or writes anything
// another component touches (rates of its member flows, residuals of its
// member links). Components are therefore filled independently — serially,
// or on a bounded worker pool — and the results are bit-identical for any
// worker count because:
//
//  1. Which pass runs, and which flows belong to which component, is decided
//     before any worker starts (dispatch never consults the worker count).
//  2. Each fill is a pure function of its component's flow order, link
//     lists, and capacities; workers own private scratch, and member sets
//     are disjoint, so no float operation's order depends on scheduling.
//  3. Sealing (epoch bumps, finish-event pushes, linkRate refresh) runs
//     serially afterwards, in the deterministic BFS component order.
//
// This is the same discipline as internal/sweep's splitmix64 shard merge:
// partition deterministically, compute independently, merge in a fixed
// order.

// compSpan indexes one link-sharing component inside the shared compFlows /
// compLinks backing arrays: flows [f0:f1), links [l0:l1).
type compSpan struct {
	f0, f1, l0, l1 int32
}

// bfsFrom expands s.compFlows/compLinks to the closure of the link-sharing
// relation, consuming the link queue from position q0 (seed links already
// appended and generation-marked). Each discovered flow is prepared
// (drained + pre-pass rate snapshot) on first visit, so the fills can run
// later — possibly on other goroutines — without touching shared columns.
func (s *Simulator) bfsFrom(q0 int) {
	for qi := q0; qi < len(s.compLinks); qi++ {
		for _, ref := range s.linkFlows[s.compLinks[qi]] {
			fi := ref.fi
			if s.fVisit[fi] == s.gen {
				continue
			}
			s.fVisit[fi] = s.gen
			s.prepare(fi)
			s.compFlows = append(s.compFlows, fi)
			off, n := s.fOff[fi], s.fNL[fi]
			for j := int32(0); j < n; j++ {
				l2 := s.linkArena[off+j]
				if s.linkGen[l2] != s.gen {
					s.linkGen[l2] = s.gen
					s.compLinks = append(s.compLinks, l2)
				}
			}
		}
	}
}

// decomposeFromSeeds builds the link-sharing components reachable from the
// dirty seed links. Seeds landing in an already-built component are skipped
// by the link generation mark, so each component is built exactly once.
func (s *Simulator) decomposeFromSeeds() {
	s.gen++
	s.comps = s.comps[:0]
	s.compFlows = s.compFlows[:0]
	s.compLinks = s.compLinks[:0]
	for _, seed := range s.dirtySeeds {
		if s.linkGen[seed] == s.gen {
			continue
		}
		s.linkGen[seed] = s.gen
		f0, l0 := len(s.compFlows), len(s.compLinks)
		s.compLinks = append(s.compLinks, seed)
		s.bfsFrom(l0)
		if len(s.compFlows) == f0 {
			// A dirty link with no flows left (the last flow on it
			// completed or rerouted away): nothing shares it, nothing to
			// fill, and linkRate was already zeroed by the eager detach.
			s.compLinks = s.compLinks[:l0]
			continue
		}
		s.comps = append(s.comps, compSpan{
			f0: int32(f0), f1: int32(len(s.compFlows)),
			l0: int32(l0), l1: int32(len(s.compLinks)),
		})
	}
}

// decomposeAll partitions the entire active set into link-sharing
// components (the fullDirty pass: the seed list overflowed, so every flow
// is suspect). Stalled flows are their own trivial components: their rate
// is already zero and stays there, so they are prepared but not filled.
func (s *Simulator) decomposeAll() {
	s.gen++
	s.comps = s.comps[:0]
	s.compFlows = s.compFlows[:0]
	s.compLinks = s.compLinks[:0]
	for _, fi := range s.active {
		if s.fVisit[fi] == s.gen {
			continue
		}
		s.fVisit[fi] = s.gen
		s.prepare(fi)
		off, n := s.fOff[fi], s.fNL[fi]
		if n == 0 {
			s.fRate[fi] = 0 // stalled; rate was zeroed when the path emptied
			continue
		}
		f0, l0 := len(s.compFlows), len(s.compLinks)
		s.compFlows = append(s.compFlows, fi)
		for j := int32(0); j < n; j++ {
			l := s.linkArena[off+j]
			if s.linkGen[l] != s.gen {
				s.linkGen[l] = s.gen
				s.compLinks = append(s.compLinks, l)
			}
		}
		s.bfsFrom(l0)
		s.comps = append(s.comps, compSpan{
			f0: int32(f0), f1: int32(len(s.compFlows)),
			l0: int32(l0), l1: int32(len(s.compLinks)),
		})
	}
}

// fillComponents fills every decomposed component — on the worker pool when
// the pass is big enough to amortize goroutine handoff — then seals flows
// and links serially in deterministic order.
func (s *Simulator) fillComponents(tel *Telemetry) {
	var work int64
	if s.workers > 1 && len(s.comps) > 1 && len(s.compFlows) >= s.parMinFlows {
		s.stats.ParallelPasses++
		work = s.fillComponentsParallel()
	} else {
		sc := s.scratchFor(0)
		for _, c := range s.comps {
			w, _ := s.fillRates(s.compFlows[c.f0:c.f1], sc, 0, false, nil)
			work += w
		}
	}
	s.stats.Components += int64(len(s.comps))
	s.sealFlows(s.compFlows)
	s.sealLinks(s.compLinks)
	s.finishPass(work, tel)
}

// fillComponentsParallel distributes component fills over the worker pool
// with an atomic work counter (components vary wildly in size, so static
// striping would leave workers idle). Fills write only their component's
// rate entries and private scratch; see the package comment for why the
// result is bit-identical to the serial order.
func (s *Simulator) fillComponentsParallel() int64 {
	nw := s.workers
	if nw > len(s.comps) {
		nw = len(s.comps)
	}
	for w := 0; w < nw; w++ {
		s.scratchFor(w) // allocate up front; workers must not grow s.scratch
	}
	if cap(s.workerWork) < nw {
		s.workerWork = make([]int64, nw)
	}
	works := s.workerWork[:nw]
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := s.scratch[w]
			var wk int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.comps) {
					break
				}
				c := s.comps[i]
				w, _ := s.fillRates(s.compFlows[c.f0:c.f1], sc, 0, false, nil)
				wk += w
			}
			works[w] = wk
		}(w)
	}
	wg.Wait()
	var total int64
	for _, wk := range works {
		total += wk
	}
	return total
}
