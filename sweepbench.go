package sharebackup

import (
	"fmt"
	"runtime"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/sweep"
)

// SweepBenchConfig tunes the sweep-engine benchmark.
type SweepBenchConfig struct {
	// K is the fat-tree parameter for the Fig1a workload (default 8 — big
	// enough to give each shard real work, small enough for a gate run).
	K int
	// Trials per rate point (default 4).
	Trials int
	// Workers is the parallel worker count to compare against the
	// single-worker baseline (0 = GOMAXPROCS).
	Workers int
}

// SweepBenchResult is the machine-readable sweep benchmark output: the same
// Fig1a sweep timed at one worker and at N, plus a determinism check on the
// two results. Speedup depends on the host's core count; on a single-core
// machine it is honestly ~1.
type SweepBenchResult struct {
	Experiment    string  `json:"experiment"`
	K             int     `json:"k"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	Wall1MS       float64 `json:"wall_1w_ms"`
	WallNMS       float64 `json:"wall_nw_ms"`
	Speedup       float64 `json:"speedup"`
	TrialsPerSec1 float64 `json:"trials_per_sec_1w"`
	TrialsPerSecN float64 `json:"trials_per_sec_nw"`
	// Deterministic is true when the one-worker and N-worker results
	// fingerprint identically — the engine's core contract.
	Deterministic bool   `json:"deterministic"`
	Fingerprint1  string `json:"fingerprint_1w"`
	FingerprintN  string `json:"fingerprint_nw"`
}

// SweepBench times the Fig1a failure sweep through the sweep engine at one
// worker and at cfg.Workers, and fingerprints both results to verify the
// engine's worker-count independence.
func SweepBench(cfg SweepBenchConfig) (*SweepBenchResult, error) {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.Trials == 0 {
		cfg.Trials = 4
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	run := func(workers int) (*Fig1Result, float64, error) {
		start := time.Now()
		res, err := Fig1a(Fig1Config{K: cfg.K, Seed: 11, Trials: cfg.Trials, Workers: workers})
		if err != nil {
			return nil, 0, err
		}
		return res, float64(time.Since(start).Nanoseconds()) / 1e6, nil
	}
	res1, wall1, err := run(1)
	if err != nil {
		return nil, err
	}
	resN, wallN, err := run(cfg.Workers)
	if err != nil {
		return nil, err
	}
	fp1, err := sweep.Fingerprint(res1)
	if err != nil {
		return nil, err
	}
	fpN, err := sweep.Fingerprint(resN)
	if err != nil {
		return nil, err
	}
	// 8 rate points (single-failure headline + 7 defaults) x Trials shards.
	shards := 8 * cfg.Trials
	out := &SweepBenchResult{
		Experiment:    "sweep-engine",
		K:             cfg.K,
		Shards:        shards,
		Workers:       cfg.Workers,
		Wall1MS:       wall1,
		WallNMS:       wallN,
		Speedup:       wall1 / wallN,
		TrialsPerSec1: float64(shards) / (wall1 / 1e3),
		TrialsPerSecN: float64(shards) / (wallN / 1e3),
		Deterministic: fp1 == fpN,
		Fingerprint1:  fmt.Sprintf("%016x", fp1),
		FingerprintN:  fmt.Sprintf("%016x", fpN),
	}
	return out, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Wall-clock throughput gets a wide tolerance (machine noise, core count);
// determinism gets a tolerance that only a loss of bit-identity can trip.
func (r *SweepBenchResult) GateMetrics() map[string]bench.Metric {
	det := 0.0
	if r.Deterministic {
		det = 1.0
	}
	return map[string]bench.Metric{
		// Wall-clock throughput varies hugely across hosts and core counts;
		// 0.9 means only a >10x collapse trips.
		"sweep.trials_per_sec_1w": {
			Value: r.TrialsPerSec1, Unit: "trials/s", Better: "higher", Tolerance: 0.9,
		},
		// Speedup is bounded below by ~1 on any host (a 1-core baseline vs a
		// many-core CI run only raises it), so the wide tolerance guards
		// against a genuine serialization bug, not machine variance.
		"sweep.speedup": {
			Value: r.Speedup, Better: "higher", Tolerance: 0.9,
		},
		"sweep.deterministic": {
			Value: det, Better: "higher", Tolerance: 0.5,
		},
	}
}
