package sharebackup

// One benchmark per table and figure of the paper (see EXPERIMENTS.md),
// plus microbenchmarks of the hot operations and ablation benches for the
// design choices called out in DESIGN.md. The per-figure benches regenerate
// the experiment once per iteration and report its headline quantity via
// b.ReportMetric, so `go test -bench .` doubles as the reproduction harness.

import (
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/coflow"
	"sharebackup/internal/controller"
	"sharebackup/internal/cost"
	"sharebackup/internal/emu"
	"sharebackup/internal/fluid"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
	"sharebackup/internal/topo"
)

// BenchmarkFig1a regenerates Figure 1(a): % flows/coflows affected by node
// failures.
func BenchmarkFig1a(b *testing.B) {
	var single float64
	for i := 0; i < b.N; i++ {
		res, err := Fig1a(Fig1Config{K: 8, Seed: 1, Trials: 2, Rates: []float64{0.01, 0.1}})
		if err != nil {
			b.Fatal(err)
		}
		single = res.SingleCoflowPct
	}
	b.ReportMetric(single, "single-failure-coflow-%")
}

// BenchmarkFig1b regenerates Figure 1(b): % flows/coflows affected by link
// failures.
func BenchmarkFig1b(b *testing.B) {
	var single float64
	for i := 0; i < b.N; i++ {
		res, err := Fig1b(Fig1Config{K: 8, Seed: 1, Trials: 2, Rates: []float64{0.01, 0.1}})
		if err != nil {
			b.Fatal(err)
		}
		single = res.SingleCoflowPct
	}
	b.ReportMetric(single, "single-failure-coflow-%")
}

// BenchmarkFig1c regenerates Figure 1(c): the CCT-slowdown CDF per
// architecture under single failures.
func BenchmarkFig1c(b *testing.B) {
	var worstReroute float64
	for i := 0; i < b.N; i++ {
		res, err := Fig1c(Fig1cConfig{K: 8, Seed: 1, Coflows: 20, Scenarios: 6, Window: 120})
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res {
			if a.Name == "ShareBackup" {
				continue
			}
			if c := a.CDF(); c.N() > 0 && c.Inverse(1) > worstReroute {
				worstReroute = c.Inverse(1)
			}
		}
	}
	b.ReportMetric(worstReroute, "worst-reroute-slowdown-x")
}

// BenchmarkTable2 regenerates Table 2: the cost equations at k=48.
func BenchmarkTable2(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := cost.Compare(48, 1, cost.EDC)
		if err != nil {
			b.Fatal(err)
		}
		rel = rows[0].Relative
	}
	b.ReportMetric(rel*100, "sharebackup-extra-%of-fattree")
}

// BenchmarkFig5 regenerates Figure 5: the cost sweep over k.
func BenchmarkFig5(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		series, err := Fig5(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		points = 0
		for _, s := range series {
			points += s.Len()
		}
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkTable3 regenerates Table 3: measured bandwidth loss / path
// dilation / upstream repair per architecture.
func BenchmarkTable3(b *testing.B) {
	var sbThroughput float64
	for i := 0; i < b.N; i++ {
		rows, err := Table3(4, 1)
		if err != nil {
			b.Fatal(err)
		}
		sbThroughput = rows[0].Throughput / rows[0].BaselineThroughput
	}
	b.ReportMetric(sbThroughput, "sharebackup-throughput-ratio")
}

// BenchmarkCapacity regenerates the Section 5.1 capacity measurements.
func BenchmarkCapacity(b *testing.B) {
	var tolerated int
	for i := 0; i < b.N; i++ {
		res, err := Capacity(8, 2)
		if err != nil {
			b.Fatal(err)
		}
		tolerated = res.ToleratedSwitchFailures
	}
	b.ReportMetric(float64(tolerated), "tolerated-failures-per-group")
}

// BenchmarkRecoveryLatency regenerates the Section 5.3 latency comparison.
func BenchmarkRecoveryLatency(b *testing.B) {
	var sbTotal time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := RecoveryLatency(8)
		if err != nil {
			b.Fatal(err)
		}
		sbTotal = rows[0].Total
	}
	b.ReportMetric(float64(sbTotal.Nanoseconds()), "sharebackup-recovery-ns")
}

// BenchmarkTableSize regenerates the Section 4.3 combined-table arithmetic.
func BenchmarkTableSize(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := TableSizes([]int{64})
		if err != nil {
			b.Fatal(err)
		}
		total = rows[0].Total
	}
	b.ReportMetric(float64(total), "entries-at-k64")
}

// BenchmarkTransientStudy regenerates the beyond-the-paper transient
// experiment: the recovery window applied mid-transfer.
func BenchmarkTransientStudy(b *testing.B) {
	var sbMax float64
	for i := 0; i < b.N; i++ {
		rows, err := TransientStudy(TransientConfig{K: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sbMax = rows[0].MaxSlowdown
	}
	b.ReportMetric(sbMax, "sharebackup-max-slowdown-x")
}

// --- Microbenchmarks of the hot operations ---

// BenchmarkEmuDeliver times one physical-layer packet walk through circuit
// state and impersonation tables.
func BenchmarkEmuDeliver(b *testing.B) {
	net, err := sbnet.New(sbnet.Config{K: 16, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		b.Fatal(err)
	}
	em, err := emu.New(net)
	if err != nil {
		b.Fatal(err)
	}
	src := emu.Host{Pod: 0, Rack: 0, Pos: 0}
	dst := emu.Host{Pod: 9, Rack: 5, Pos: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Deliver(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaceSwitch times one failover (circuit reconfiguration across
// the failure group) including invariant-relevant state updates.
func BenchmarkReplaceSwitch(b *testing.B) {
	net, err := sbnet.New(sbnet.Config{K: 16, N: 1, Tech: circuit.Crosspoint})
	if err != nil {
		b.Fatal(err)
	}
	g := net.AggGroup(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := g.Slots()[0]
		backup, _, err := net.Replace(victim)
		if err != nil {
			b.Fatal(err)
		}
		// Return the victim so the pool never empties.
		if err := net.Release(victim); err != nil {
			b.Fatal(err)
		}
		_ = backup
	}
}

// BenchmarkMaxMinRates times one progressive-filling pass over an
// all-to-all workload on a k=8 fat-tree (992 flows).
func BenchmarkMaxMinRates(b *testing.B) {
	ft, err := topo.NewFatTree(topo.Config{K: 8, HostsPerEdge: 1, HostCapacity: 40})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := allToAllFlows(ft, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := fluid.New(ft.Topology)
		for j, f := range flows {
			if err := sim.AddFlow(fluid.FlowID(j), 1e12, 0, f.path); err != nil {
				b.Fatal(err)
			}
		}
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECMPPathFor times flow-to-path assignment.
func BenchmarkECMPPathFor(b *testing.B) {
	ft, err := topo.NewFatTree(topo.Config{K: 16, HostsPerEdge: 1, HostCapacity: 80})
	if err != nil {
		b.Fatal(err)
	}
	e := &routing.ECMP{FT: ft, Seed: 7}
	n := ft.NumHosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PathFor(i%n, (i+n/2)%n, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVLANTableLookup times the combined-table lookup a backup switch
// performs while impersonating (Section 4.3).
func BenchmarkVLANTableLookup(b *testing.B) {
	vt, err := routing.BuildVLANTable(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	dst := routing.Addr{A: 10, B: 9, C: 3, D: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := vt.Lookup(i%32, dst); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkOfflineDiagnosis times one link-failure diagnosis round.
func BenchmarkOfflineDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, err := sbnet.New(sbnet.Config{K: 8, N: 1, Tech: circuit.Crosspoint})
		if err != nil {
			b.Fatal(err)
		}
		ctl := controller.New(net, controller.Config{})
		edge := net.EdgeGroup(0).Slots()[0]
		agg := net.AggGroup(0).Slots()[0]
		if err := net.InjectPortFailure(edge, 4); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.ReportLinkFailure(
			controller.EndPoint{Switch: edge, Port: 4},
			controller.EndPoint{Switch: agg, Port: 0}, 0,
		); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ctl.RunDiagnosis(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoflowGenerate times synthetic trace generation at the paper's
// scale (150 racks, 526 coflows).
func BenchmarkCoflowGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := coflow.Generate(coflow.GenConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices from DESIGN.md) ---

// BenchmarkAblationDiagnosisBackupReturn measures backup-pool occupancy
// under a stream of link failures with and without offline diagnosis:
// replace-both-ends alone consumes two backups per failure; diagnosis
// returns the exonerated half, doubling effective capacity.
func BenchmarkAblationDiagnosisBackupReturn(b *testing.B) {
	run := func(diagnose bool) (consumed int) {
		net, err := sbnet.New(sbnet.Config{K: 8, N: 4, Tech: circuit.Crosspoint})
		if err != nil {
			b.Fatal(err)
		}
		ctl := controller.New(net, controller.Config{CSReportThreshold: 1000})
		for i := 0; i < 4; i++ {
			edge := net.EdgeGroup(0).Slots()[i]
			agg := net.AggGroup(0).Slots()[i]
			if err := net.InjectPortFailure(edge, 4+0); err != nil {
				b.Fatal(err)
			}
			if _, err := ctl.ReportLinkFailure(
				controller.EndPoint{Switch: edge, Port: 4},
				controller.EndPoint{Switch: agg, Port: i},
				time.Duration(i)*time.Millisecond,
			); err != nil {
				b.Fatal(err)
			}
			if diagnose {
				if _, err := ctl.RunDiagnosis(); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, g := range []*sbnet.Group{net.EdgeGroup(0), net.AggGroup(0)} {
			consumed += 4 - len(net.FreeBackups(g.ID))
		}
		return consumed
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(without), "backups-consumed-no-diagnosis")
	b.ReportMetric(float64(with), "backups-consumed-with-diagnosis")
}

// BenchmarkAblationKeepVsSwitchBack counts circuit reconfigurations under
// the paper's keep-the-backup-online policy versus a switch-back policy
// that restores the original assignment after every repair.
func BenchmarkAblationKeepVsSwitchBack(b *testing.B) {
	run := func(switchBack bool) int {
		net, err := sbnet.New(sbnet.Config{K: 8, N: 1, Tech: circuit.Crosspoint})
		if err != nil {
			b.Fatal(err)
		}
		base := net.TotalReconfigs()
		g := net.AggGroup(0)
		for round := 0; round < 8; round++ {
			victim := g.Slots()[round%4]
			backup, _, err := net.Replace(victim)
			if err != nil {
				b.Fatal(err)
			}
			if err := net.Release(victim); err != nil { // repaired
				b.Fatal(err)
			}
			if switchBack {
				// Swap the repaired switch back into its slot.
				if _, err := net.ReplaceWith(backup, victim); err != nil {
					b.Fatal(err)
				}
				if err := net.Release(backup); err != nil {
					b.Fatal(err)
				}
			}
		}
		return net.TotalReconfigs() - base
	}
	var keep, swap int
	for i := 0; i < b.N; i++ {
		keep = run(false)
		swap = run(true)
	}
	b.ReportMetric(float64(keep), "reconfigs-keep-policy")
	b.ReportMetric(float64(swap), "reconfigs-switchback-policy")
}

// BenchmarkAblationIdleBackupActivation measures the Section 6 extension:
// raw fabric links added by activating idle backups vs the host-reachable
// bandwidth they contribute (zero under two-level routing — the measured
// answer to the paper's open question).
func BenchmarkAblationIdleBackupActivation(b *testing.B) {
	var fabric, hostBW float64
	for i := 0; i < b.N; i++ {
		rows, err := AugmentationStudy(8)
		if err != nil {
			b.Fatal(err)
		}
		fabric, hostBW = 0, 0
		for _, r := range rows {
			fabric += float64(r.FabricLinksAdded)
			hostBW += r.HostBandwidthAdded
		}
	}
	b.ReportMetric(fabric, "fabric-links-added")
	b.ReportMetric(hostBW, "host-bandwidth-added")
}

// BenchmarkAblationNonUniformGroups compares uniform vs greedy
// criticality-weighted backup allocation at equal budget.
func BenchmarkAblationNonUniformGroups(b *testing.B) {
	var uni, non float64
	for i := 0; i < b.N; i++ {
		rows, err := ExtensionStudy(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		uni, non = rows[0].WeightedRisk, rows[1].WeightedRisk
	}
	b.ReportMetric(uni*1e6, "uniform-weighted-risk-x1e6")
	b.ReportMetric(non*1e6, "nonuniform-weighted-risk-x1e6")
}

// BenchmarkAblationBackupPoolSize sweeps n and reports the probability a
// failure group overflows its pool — the cost/robustness trade-off behind
// Figure 5's n=1 vs n=4 curves.
func BenchmarkAblationBackupPoolSize(b *testing.B) {
	var p1, p4 float64
	for i := 0; i < b.N; i++ {
		res1, err := Capacity(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		p1 = res1.PGroupOverflow
		res4, err := Capacity(8, 4)
		if err != nil {
			b.Fatal(err)
		}
		p4 = res4.PGroupOverflow
	}
	b.ReportMetric(p1*1e9, "overflow-prob-n1-x1e9")
	b.ReportMetric(p4*1e9, "overflow-prob-n4-x1e9")
}
