package sharebackup

import (
	"testing"
	"time"

	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
)

// TestRecoverySpanPhaseBreakdown pins the Section 5.3 latency budget in
// virtual time: a single switch failover's span must decompose into
// detection + report + reconfiguration phases that sum exactly to the
// end-to-end recovery latency, with each phase equal to its budgeted value
// (detection = MissThreshold probe intervals, report = two one-way
// communication delays, reconfiguration = the crosspoint switching time).
func TestRecoverySpanPhaseBreakdown(t *testing.T) {
	const (
		probe     = time.Millisecond
		threshold = 3
		comm      = 100 * time.Microsecond
	)
	bus := &obs.Bus{}
	col := obs.NewSpanCollector()
	bus.Attach(col)
	sys, err := New(Config{
		K: 4, N: 1, Tech: Crosspoint,
		Controller: controller.Config{
			ProbeInterval: probe,
			MissThreshold: threshold,
			CommDelay:     comm,
		},
		Obs: bus,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Last heartbeat at 0, failure declared at exactly the detection
	// deadline: 3 missed 1 ms probes.
	victim := sys.Network.AggGroup(0).Slots()[0]
	sys.Controller.Heartbeat(victim, 0)
	at := time.Duration(threshold) * probe
	rec, err := sys.FailNode(victim, at)
	if err != nil {
		t.Fatal(err)
	}

	reconfig := Crosspoint.ReconfigDelay()
	wantDetection := time.Duration(threshold) * probe
	wantReport := 2 * comm
	wantTotal := wantDetection + wantReport + reconfig
	if rec.Detection != wantDetection || rec.Comm != wantReport || rec.Reconfig != reconfig {
		t.Fatalf("recovery phases detection=%v comm=%v reconfig=%v, want %v/%v/%v",
			rec.Detection, rec.Comm, rec.Reconfig, wantDetection, wantReport, reconfig)
	}
	if rec.Total() != wantTotal {
		t.Fatalf("recovery total %v, want %v", rec.Total(), wantTotal)
	}

	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Complete || sp.Kind != "node" {
		t.Fatalf("span complete=%v kind=%q, want complete node span", sp.Complete, sp.Kind)
	}
	// The span's phases must sum exactly to its end-to-end latency — the
	// Table 2 property the phase-breakdown reports rely on.
	if sp.PhaseSum() != sp.Total {
		t.Fatalf("phase sum %v != span total %v", sp.PhaseSum(), sp.Total)
	}
	if sp.Total != rec.Total() || sp.Total != wantTotal {
		t.Fatalf("span total %v, recovery total %v, budget %v — all three must agree",
			sp.Total, rec.Total(), wantTotal)
	}

	// The span's event timeline must carry the whole recovery story in
	// order: declaration, circuit reconfiguration, backup assignment,
	// completion.
	wantKinds := []obs.Kind{
		obs.KindFailureDeclared,
		obs.KindCircuitReconfigured,
		obs.KindBackupAssigned,
		obs.KindRecoveryComplete,
	}
	if len(sp.Events) != len(wantKinds) {
		t.Fatalf("span has %d events, want %d", len(sp.Events), len(wantKinds))
	}
	for i, ev := range sp.Events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("span event %d is %v, want %v", i, ev.Kind, wantKinds[i])
		}
	}
	done := sp.Events[len(sp.Events)-1]
	if got, want := done.T, at+wantReport+reconfig; got != want {
		t.Fatalf("recovery-complete at %v, want failure time + report + reconfig = %v", got, want)
	}
}

// TestRecoveryBreakdownAggregation checks that repeated failovers aggregate
// into exact phase statistics: constant phases must survive summarization
// unchanged (no float drift at µs scale).
func TestRecoveryBreakdownAggregation(t *testing.T) {
	bus := &obs.Bus{}
	col := obs.NewSpanCollector()
	bus.Attach(col)
	const trials = 4
	for i := 0; i < trials; i++ {
		sys, err := New(Config{K: 4, N: 1, Obs: bus})
		if err != nil {
			t.Fatal(err)
		}
		victim := sys.Network.EdgeGroup(i % 4).Slots()[0]
		sys.Controller.Heartbeat(victim, 0)
		at := time.Duration(sys.Controller.Config().MissThreshold) * sys.Controller.Config().ProbeInterval
		if _, err := sys.FailNode(victim, at); err != nil {
			t.Fatal(err)
		}
	}
	b := col.Breakdown("node")
	if b.N() != trials {
		t.Fatalf("aggregated %d recoveries, want %d", b.N(), trials)
	}
	sums := b.Summaries()
	for _, phase := range obs.PhaseNames {
		s := sums[phase]
		if s.N != trials || s.Min != s.Max || s.Min != s.Mean || s.Min != s.Median {
			t.Fatalf("phase %s not constant across identical failovers: %+v", phase, s)
		}
	}
	if got, want := sums["total"].Min, sums["detection"].Min+sums["report"].Min+sums["reconfig"].Min; got != want {
		t.Fatalf("total %vµs != phase sum %vµs", got, want)
	}
}
