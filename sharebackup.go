// Package sharebackup is the public API of this reproduction of
// "Stop Rerouting! Enabling ShareBackup for Failure Recovery in Data Center
// Networks" (Xia, Huang, Ng — HotNets 2017).
//
// ShareBackup replaces rerouting-based failure recovery in fat-tree data
// center networks with sharable backup: every group of k/2 packet switches
// (a failure group) shares n spare switches through small circuit switches,
// so a failed switch is physically replaced — restoring full bandwidth with
// no path dilation — instead of being routed around.
//
// The package wires together the building blocks in internal/:
//
//	topo        fat-tree / F10 topologies and paths
//	circuit     circuit-switch crossbars
//	sbnet       the ShareBackup physical architecture (Section 3)
//	routing     two-level tables, VLAN impersonation, ECMP, rerouting
//	fluid       max-min fair flow-level simulator
//	coflow      coflow workloads (trace parser + synthetic generator)
//	failure     failure injection and availability arithmetic
//	controller  the control plane (Section 4)
//	ctlnet      the control plane over real TCP sockets
//	cost        the cost model (Section 5.2)
//
// and exposes the experiment harness that regenerates every figure and
// table of the paper (see EXPERIMENTS.md).
package sharebackup

import (
	"fmt"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/obs"
	"sharebackup/internal/sbnet"
)

// Re-exported names so typical callers need only this package.
type (
	// System bundles a ShareBackup network with its controller.
	SwitchID = sbnet.SwitchID
	// Recovery is one recovery action with its latency breakdown.
	Recovery = controller.Recovery
	// EndPoint names a switch interface in failure reports.
	EndPoint = controller.EndPoint
	// Technology selects the circuit-switch implementation.
	Technology = circuit.Technology
)

// Circuit-switch technologies (Section 5.2's two price points).
const (
	Crosspoint = circuit.Crosspoint
	MEMS2D     = circuit.MEMS2D
)

// WriteWiring renders a wiring manifest as "from -> to" lines (re-exported
// for the sbwire tool and downstream deployment scripts).
var WriteWiring = sbnet.WriteWiring

// Config parameterizes a ShareBackup deployment.
type Config struct {
	// K is the fat-tree parameter (even, >= 4).
	K int
	// N is the number of backup switches per failure group.
	N int
	// Tech is the circuit-switch technology (default Crosspoint).
	Tech Technology
	// Controller tunes the control plane; zero values take defaults.
	Controller controller.Config
	// Obs is the event bus the controller and network emit structured
	// events on (see internal/obs). Defaults to obs.Default, the
	// process-wide bus the commands' -trace/-events flags attach sinks
	// to; emission costs one atomic load when no sink is attached.
	Obs *obs.Bus
	// Metrics is the registry the controller resolves its counters and
	// gauges in (forwarded as Controller.Metrics unless that is already
	// set). Nil keeps a private registry per system; commands pass
	// obs.DefaultRegistry so the -debug-addr /varz endpoint sees
	// controller metrics.
	Metrics *obs.Registry
}

// System is a running ShareBackup deployment: the physical network plus its
// logically centralized controller.
type System struct {
	Network    *sbnet.Network
	Controller *controller.Controller
}

// New builds a ShareBackup system.
func New(cfg Config) (*System, error) {
	net, err := sbnet.New(sbnet.Config{K: cfg.K, N: cfg.N, Tech: cfg.Tech})
	if err != nil {
		return nil, err
	}
	bus := cfg.Obs
	if bus == nil {
		bus = obs.Default
	}
	net.SetObserver(bus)
	if cfg.Controller.Metrics == nil {
		cfg.Controller.Metrics = cfg.Metrics
	}
	ctl := controller.New(net, cfg.Controller)
	ctl.SetObserver(bus)
	return &System{
		Network:    net,
		Controller: ctl,
	}, nil
}

// FailNode injects a node failure and runs recovery, returning the recovery
// record. It is the one-call convenience over InjectNodeFailure +
// RecoverNode for examples and experiments.
func (s *System) FailNode(id SwitchID, at time.Duration) (*Recovery, error) {
	s.Network.InjectNodeFailure(id)
	rec, err := s.Controller.RecoverNode(id, at)
	if err != nil {
		return nil, err
	}
	if err := s.Network.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sharebackup: invariants after recovery: %w", err)
	}
	return rec, nil
}

// FailLink injects a link failure (breaking the interface at end a) and
// runs the replace-both-ends recovery of Section 4.1.
func (s *System) FailLink(a, b EndPoint, at time.Duration) (*Recovery, error) {
	if err := s.Network.InjectPortFailure(a.Switch, a.Port); err != nil {
		return nil, err
	}
	rec, err := s.Controller.ReportLinkFailure(a, b, at)
	if err != nil {
		return nil, err
	}
	if err := s.Network.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sharebackup: invariants after recovery: %w", err)
	}
	return rec, nil
}
