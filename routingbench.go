package sharebackup

import (
	"fmt"
	"runtime"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/failure"
	"sharebackup/internal/routing"
	"sharebackup/internal/topo"
)

// This file is the routing-core benchmark behind `sbbench -routing`: it
// measures the interned path store's hot-path contract (ECMP.PathFor as an
// allocation-free table lookup) against fresh ECMPPaths enumeration, plus
// reroute-storm path-lookup throughput with shared scratch state. Allocation
// in the steady state is a hard benchmark failure, not a gated metric — the
// trajectory gate skips zero-valued baselines, so drift away from zero must
// fail loudly here instead.

// RoutingBenchConfig parameterizes RoutingBench.
type RoutingBenchConfig struct {
	// K is the fat-tree parameter (default 16, the acceptance-criteria
	// scale: (k/2)^2 = 64 equal-cost paths per inter-pod pair).
	K int
	// Smoke shrinks the measurement loops to CI scale. Metrics stay per-op,
	// so smoke runs still gate against full-size baselines.
	Smoke bool
}

// RoutingBenchResult is the machine-readable routing benchmark output.
// All timing numbers are host-dependent; PathForAllocsOp is structural and
// must be zero.
type RoutingBenchResult struct {
	Experiment         string  `json:"experiment"`
	K                  int     `json:"k"`
	Smoke              bool    `json:"smoke,omitempty"`
	WarmedPairs        int     `json:"warmed_pairs"`
	InternedPaths      int     `json:"interned_paths"`
	Lookups            int64   `json:"lookups"`
	PathForNSOp        float64 `json:"pathfor_ns_op"`
	PathForAllocsOp    float64 `json:"pathfor_allocs_op"`
	FreshNSOp          float64 `json:"fresh_ns_op"`
	SpeedupVsFresh     float64 `json:"speedup_vs_fresh"`
	StormReroutes      int64   `json:"storm_reroutes"`
	StormLookupsPerSec float64 `json:"storm_lookups_per_sec"`
}

// RoutingBench measures ECMP.PathFor through the interned path store against
// the fresh-enumeration baseline it replaced, then a reroute storm (one
// failed aggregation switch, every crossing flow rerouted with shared
// Blocked/load/scratch state). It returns an error — a benchmark failure,
// exit 2 in sbbench — if the warm lookup path allocates or disagrees with
// fresh enumeration.
func RoutingBench(cfg RoutingBenchConfig) (*RoutingBenchResult, error) {
	if cfg.K == 0 {
		cfg.K = 16
	}
	ft, err := topo.NewFatTree(topo.Config{K: cfg.K, HostsPerEdge: 1})
	if err != nil {
		return nil, err
	}
	e := &routing.ECMP{FT: ft, Seed: 11}
	n := ft.NumHosts()
	// The measured pair set: a band of sources against every destination,
	// mixing intra-rack, intra-pod and inter-pod classes.
	srcs := 8
	if srcs > n {
		srcs = n
	}
	rounds := 200
	stormWaves := 12
	if cfg.Smoke {
		rounds = 20
		stormWaves = 2
	}
	type pair struct{ s, d int }
	var pairs []pair
	for s := 0; s < srcs; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				pairs = append(pairs, pair{s, d})
			}
		}
	}
	// Warm: intern every measured pair, verifying the exactness contract on
	// the way (cheap insurance that the store serves real ECMP paths).
	for _, p := range pairs {
		cached, err := ft.PathStore().Paths(p.s, p.d)
		if err != nil {
			return nil, err
		}
		fresh, err := ft.ECMPPaths(p.s, p.d)
		if err != nil {
			return nil, err
		}
		if len(cached) != len(fresh) {
			return nil, fmt.Errorf("routing bench: pair (%d,%d): %d interned paths, %d fresh", p.s, p.d, len(cached), len(fresh))
		}
		for i := range fresh {
			if len(cached[i].Links) != len(fresh[i].Links) {
				return nil, fmt.Errorf("routing bench: pair (%d,%d) path %d: interned and fresh paths differ", p.s, p.d, i)
			}
			for j := range fresh[i].Links {
				if cached[i].Links[j] != fresh[i].Links[j] {
					return nil, fmt.Errorf("routing bench: pair (%d,%d) path %d: interned and fresh paths differ", p.s, p.d, i)
				}
			}
		}
	}

	// Warm lookups: PathFor through the store.
	var sink topo.Path
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var lookups int64
	for r := 0; r < rounds; r++ {
		for i, p := range pairs {
			path, err := e.PathFor(p.s, p.d, uint64(r*len(pairs)+i))
			if err != nil {
				return nil, err
			}
			sink = path
			lookups++
		}
	}
	cachedWall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	_ = sink
	allocsOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(lookups)
	if allocsOp > 0.5 {
		return nil, fmt.Errorf("routing bench: warm PathFor allocates %.2f times per lookup, want 0", allocsOp)
	}

	// Fresh-enumeration baseline: what PathFor cost before interning.
	freshRounds := rounds / 10
	if freshRounds == 0 {
		freshRounds = 1
	}
	start = time.Now()
	var freshLookups int64
	for r := 0; r < freshRounds; r++ {
		for i, p := range pairs {
			paths, err := ft.ECMPPaths(p.s, p.d)
			if err != nil {
				return nil, err
			}
			sink = paths[uint64(r*len(pairs)+i)%uint64(len(paths))]
			freshLookups++
		}
	}
	freshWall := time.Since(start)
	_ = sink

	// Reroute storm: fail the first aggregation switch of each pod in turn
	// and reroute every crossing flow, reusing one Blocked, one load vector
	// and one Scratch across the whole storm — the shape fig1c/transient's
	// applyScheme runs at trial time.
	load := routing.NewLinkLoad(ft.Topology)
	blocked := topo.NewBlocked()
	var scratch routing.Scratch
	var stormOps int64
	stormStart := time.Now()
	for w := 0; w < stormWaves; w++ {
		failure.BlockedInto(blocked, []topo.NodeID{ft.Agg(w%cfg.K, 0)}, nil)
		load.Reset()
		for i, p := range pairs {
			orig, err := e.PathFor(p.s, p.d, uint64(i))
			if err != nil {
				return nil, err
			}
			if blocked.PathOK(orig) {
				load.Add(orig, 1)
				continue
			}
			np, ok := routing.F10LocalReroute(ft, orig, blocked, &scratch)
			if !ok {
				np, ok = routing.GlobalOptimalReroute(ft, p.s, p.d, blocked, load)
			}
			if ok {
				load.Add(np, 1)
			}
			stormOps++
		}
	}
	stormWall := time.Since(stormStart)
	if stormOps == 0 {
		return nil, fmt.Errorf("routing bench: storm rerouted no flows")
	}

	st := ft.PathStore().Stats()
	return &RoutingBenchResult{
		Experiment:         "routing-core",
		K:                  cfg.K,
		Smoke:              cfg.Smoke,
		WarmedPairs:        st.Pairs,
		InternedPaths:      st.Paths,
		Lookups:            lookups,
		PathForNSOp:        float64(cachedWall.Nanoseconds()) / float64(lookups),
		PathForAllocsOp:    allocsOp,
		FreshNSOp:          float64(freshWall.Nanoseconds()) / float64(freshLookups),
		SpeedupVsFresh:     freshWall.Seconds() / float64(freshLookups) * float64(lookups) / cachedWall.Seconds(),
		StormReroutes:      stormOps,
		StormLookupsPerSec: float64(stormOps) / stormWall.Seconds(),
	}, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Everything here is host wall-clock, so tolerances are wide: only
// order-of-magnitude losses (e.g. the lookup path re-growing an allocation)
// should trip the gate. pathfor_allocs_op is structurally zero and enforced
// as a hard error in RoutingBench; it is recorded for the bench file but the
// gate skips zero-valued baselines.
func (r *RoutingBenchResult) GateMetrics() map[string]bench.Metric {
	return map[string]bench.Metric{
		"routing.pathfor_ns_op": {
			Value: r.PathForNSOp, Unit: "ns", Better: "lower", Tolerance: 0.67,
		},
		"routing.pathfor_allocs_op": {
			Value: r.PathForAllocsOp, Unit: "allocs", Better: "lower", Tolerance: 0.25,
		},
		"routing.fresh_ns_op": {
			Value: r.FreshNSOp, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"routing.speedup_vs_fresh": {
			Value: r.SpeedupVsFresh, Unit: "x", Better: "higher", Tolerance: 0.5,
		},
		"routing.storm_lookups_per_sec": {
			Value: r.StormLookupsPerSec, Unit: "lookups/s", Better: "higher", Tolerance: 0.67,
		},
	}
}
