package sharebackup

import (
	"context"
	"fmt"

	"sharebackup/internal/coflow"
	"sharebackup/internal/failure"
	"sharebackup/internal/metrics"
	"sharebackup/internal/routing"
	"sharebackup/internal/sweep"
	"sharebackup/internal/topo"
)

// Fig1Config parameterizes the Figure 1(a)/(b) reproduction: the percentage
// of flows and coflows affected as the failure rate varies, on a k-ary
// fat-tree carrying rack-level coflow traffic with ECMP routing.
type Fig1Config struct {
	// K is the fat-tree parameter. Default 16 (the paper's failure
	// study; 128 racks at 10:1 oversubscription).
	K int
	// Seed drives workload generation, ECMP hashing and failure
	// sampling.
	Seed int64
	// Rates is the failure-rate sweep (fraction of candidate elements
	// failed). Defaults to {0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}.
	Rates []float64
	// Trials averages each rate over this many independent failure
	// samples. Default 3.
	Trials int
	// Trace overrides the workload; by default a synthetic trace with
	// the Facebook-like marginals is generated for the network's racks.
	Trace *coflow.Trace
	// Workers sizes the sweep worker pool (0 = GOMAXPROCS). Every
	// (rate, trial) sample is one sweep shard with its own RNG substream,
	// so the result is bit-identical for any worker count.
	Workers int
	// Checkpoint, when set, is the sweep's JSONL checkpoint file; with
	// Resume, completed (rate, trial) shards are not re-run.
	Checkpoint string
	Resume     bool
}

func (c *Fig1Config) setDefaults() {
	if c.K == 0 {
		c.K = 16
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
}

// Fig1Result is one affected-percentage sweep.
type Fig1Result struct {
	// Rates is the x-axis.
	Rates []float64
	// FlowPct and CoflowPct are the averaged percentages of affected
	// flows and coflows at each rate.
	FlowPct   []float64
	CoflowPct []float64
	// SingleFlowPct / SingleCoflowPct are the percentages under exactly
	// one failed element (averaged over Trials samples) — the paper's
	// headline single-failure numbers (29.6% of coflows for one node,
	// 17% for one link).
	SingleFlowPct   float64
	SingleCoflowPct float64
	// Magnification is CoflowPct/FlowPct per rate (the paper reports
	// 3.3x-90x).
	Magnification []float64
}

// Fig1a reproduces Figure 1(a): impact of node failures. Failure candidates
// are aggregation and core switches (rerouting cannot survive an edge
// failure for single-homed racks; see internal/failure).
func Fig1a(cfg Fig1Config) (*Fig1Result, error) {
	return fig1(cfg, true)
}

// Fig1b reproduces Figure 1(b): impact of link failures on the switching
// fabric.
func Fig1b(cfg Fig1Config) (*Fig1Result, error) {
	return fig1(cfg, false)
}

// rackFatTree builds the failure study's network: one rack endpoint per
// edge switch, 10:1 oversubscribed access.
func rackFatTree(k int, ab bool) (*topo.FatTree, error) {
	return topo.NewFatTree(topo.Config{
		K:            k,
		HostsPerEdge: 1,
		LinkCapacity: 1,
		HostCapacity: 10 * float64(k/2),
		AB:           ab,
	})
}

// flowRef ties a routed flow back to its coflow.
type flowRef struct {
	coflow int
	path   topo.Path
}

// routeTrace assigns every trace flow an ECMP path on ft. Trace racks are
// mapped onto the fat-tree's racks modulo the rack count; flows that become
// rack-local under the mapping are dropped (they use no network).
func routeTrace(ft *topo.FatTree, tr *coflow.Trace, seed int64) ([]flowRef, error) {
	racks := ft.NumHosts()
	ecmp := &routing.ECMP{FT: ft, Seed: uint64(seed)}
	var out []flowRef
	flowID := uint64(0)
	for ci := range tr.Coflows {
		c := &tr.Coflows[ci]
		for _, f := range c.Flows {
			src, dst := f.Src%racks, f.Dst%racks
			flowID++
			if src == dst {
				continue
			}
			p, err := ecmp.PathFor(src, dst, flowID)
			if err != nil {
				return nil, err
			}
			out = append(out, flowRef{coflow: ci, path: p})
		}
	}
	return out, nil
}

// fig1Sample is one sweep shard's output: the affected percentages of a
// single failure sample at one rate point. JSON-tagged so shards checkpoint.
type fig1Sample struct {
	Flow   float64 `json:"flow"`
	Coflow float64 `json:"coflow"`
}

func fig1(cfg Fig1Config, nodes bool) (*Fig1Result, error) {
	cfg.setDefaults()
	ft, err := rackFatTree(cfg.K, false)
	if err != nil {
		return nil, err
	}
	tr := cfg.Trace
	if tr == nil {
		tr, err = coflow.Generate(coflow.GenConfig{Racks: ft.NumHosts(), Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
	}
	flows, err := routeTrace(ft, tr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("sharebackup: Fig1: trace produced no network flows")
	}
	// Candidate lists are a pure function of the topology; the injector
	// building them is never sampled from (each shard gets its own).
	cands := failure.NewInjector(ft, cfg.Seed)
	nodeCands := cands.ReroutableSwitches()
	linkCands := cands.FabricLinks()

	// The trial space: rate point 0 is the single-failure headline number
	// (rate rounding to exactly one element), points 1..len(Rates) the
	// figure's x-axis; each point is averaged over Trials independent
	// failure samples. One (point, trial) pair is one sweep shard drawing
	// its failure sample from its own substream, so the sweep merges
	// identically for any worker count.
	var singleRate float64
	if nodes {
		singleRate = 0.5 / float64(len(nodeCands)) // rounds to one element
	} else {
		singleRate = 0.5 / float64(len(linkCands))
	}
	points := append([]float64{singleRate}, cfg.Rates...)
	name := "fig1b"
	if nodes {
		name = "fig1a"
	}
	samples, err := sweep.Run(context.Background(), sweep.Config{
		Name:       name,
		Shards:     len(points) * cfg.Trials,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Checkpoint: cfg.Checkpoint,
		Resume:     cfg.Resume,
	}, func(_ context.Context, sh sweep.Shard) (fig1Sample, error) {
		rate := points[sh.Index/cfg.Trials]
		inj := failure.NewInjector(ft, sh.Seed)
		var blocked *topo.Blocked
		if nodes {
			sample, err := inj.SampleNodes(nodeCands, rate)
			if err != nil {
				return fig1Sample{}, err
			}
			blocked = failure.Blocked(sample, nil)
		} else {
			sample, err := inj.SampleLinks(linkCands, rate)
			if err != nil {
				return fig1Sample{}, err
			}
			blocked = failure.Blocked(nil, sample)
		}
		f, c := affected(flows, len(tr.Coflows), blocked)
		return fig1Sample{Flow: f, Coflow: c}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{Rates: cfg.Rates}
	for pi := range points {
		var f, c float64
		for trial := 0; trial < cfg.Trials; trial++ {
			s := samples[pi*cfg.Trials+trial]
			f += s.Flow
			c += s.Coflow
		}
		f /= float64(cfg.Trials)
		c /= float64(cfg.Trials)
		if pi == 0 {
			res.SingleFlowPct, res.SingleCoflowPct = f, c
			continue
		}
		res.FlowPct = append(res.FlowPct, f)
		res.CoflowPct = append(res.CoflowPct, c)
		res.Magnification = append(res.Magnification, metrics.Ratio(c, f))
	}
	return res, nil
}

// affected returns the percentage of flows and coflows whose ECMP path
// crosses a failed element ("a flow is considered affected if it traverses a
// failed node or link, and a coflow is affected if at least one flow in its
// set gets affected").
func affected(flows []flowRef, numCoflows int, blocked *topo.Blocked) (flowPct, coflowPct float64) {
	hit := 0
	coflowHit := make(map[int]bool)
	for _, f := range flows {
		if !blocked.PathOK(f.path) {
			hit++
			coflowHit[f.coflow] = true
		}
	}
	return 100 * float64(hit) / float64(len(flows)), 100 * float64(len(coflowHit)) / float64(numCoflows)
}

// Series renders the result as two plottable series (the figure's two
// curves).
func (r *Fig1Result) Series(xlabel string) (flows, coflows *metrics.Series) {
	flows = &metrics.Series{Name: "flows %", XLabel: xlabel, YLabel: "% affected"}
	coflows = &metrics.Series{Name: "coflows %", XLabel: xlabel, YLabel: "% affected"}
	for i, rate := range r.Rates {
		flows.Add(rate, r.FlowPct[i])
		coflows.Add(rate, r.CoflowPct[i])
	}
	return flows, coflows
}
