package sharebackup

// Integration tests exercising the whole stack together: architecture +
// controller + emulation + workload, across failure/recovery lifecycles.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"sharebackup/internal/circuit"
	"sharebackup/internal/controller"
	"sharebackup/internal/detect"
	"sharebackup/internal/emu"
	"sharebackup/internal/sbnet"
)

// TestLifecycleFullStack drives a ShareBackup system through the paper's
// whole lifecycle: node failure -> recovery -> link failure -> recovery ->
// offline diagnosis -> repair -> reuse, verifying after every step that the
// architecture invariants hold AND that real packets still deliver along
// unchanged logical paths through the physical circuit state.
func TestLifecycleFullStack(t *testing.T) {
	sys, err := New(Config{K: 6, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net, ctl := sys.Network, sys.Controller
	em, err := emu.New(net)
	if err != nil {
		t.Fatal(err)
	}

	// Reference delivery fingerprints across pods.
	src := emu.Host{Pod: 0, Rack: 0, Pos: 0}
	dsts := []emu.Host{
		{Pod: 0, Rack: 0, Pos: 2}, // same rack
		{Pod: 0, Rack: 2, Pos: 1}, // same pod
		{Pod: 3, Rack: 1, Pos: 0}, // cross pod
		{Pod: 5, Rack: 2, Pos: 2}, // cross pod
	}
	baseline := make([]emu.PathFingerprint, len(dsts))
	for i, dst := range dsts {
		walk, err := em.Deliver(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = em.Fingerprint(walk)
	}
	verify := func(stage string) {
		t.Helper()
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", stage, err)
		}
		for i, dst := range dsts {
			walk, err := em.Deliver(src, dst)
			if err != nil {
				t.Fatalf("%s: delivery to %+v: %v", stage, dst, err)
			}
			if !baseline[i].Equal(em.Fingerprint(walk)) {
				t.Fatalf("%s: logical path to %+v changed", stage, dst)
			}
		}
	}

	// Stage 1: node failure on the cross-pod path's core group.
	core := net.CoreGroup(0).Slots()[0]
	if _, err := sys.FailNode(core, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	verify("after core failover")

	// Stage 2: link failure between the source edge and an agg.
	edge := net.EdgeGroup(0).Slots()[0]
	agg := net.AggGroup(0).Slots()[1] // edge slot 0's up-port 1 reaches agg slot 1
	if _, err := sys.FailLink(
		EndPoint{Switch: edge, Port: 3 + 1},
		EndPoint{Switch: agg, Port: 0},
		2*time.Millisecond,
	); err != nil {
		t.Fatal(err)
	}
	verify("after link failover")

	// Stage 3: offline diagnosis exonerates the agg, keeps the edge out.
	results, err := ctl.RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	exonerated := 0
	for _, r := range results {
		if r.Exonerated {
			exonerated++
		}
	}
	if exonerated != 1 {
		t.Fatalf("diagnosis exonerated %d suspects, want 1 (the agg side)", exonerated)
	}
	verify("after diagnosis")

	// Stage 4: the faulty edge is repaired and reused for the next
	// failure in its group.
	if err := ctl.RepairSwitch(edge); err != nil {
		t.Fatal(err)
	}
	next := net.EdgeGroup(0).Slots()[1]
	net.InjectNodeFailure(next)
	rec, err := ctl.RecoverNode(next, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Backup) != 1 {
		t.Fatal("no backup used")
	}
	verify("after repaired-switch reuse")
}

// TestConcurrentFailuresAcrossGroups verifies that simultaneous failures in
// different failure groups are all recoverable (independence of groups).
func TestConcurrentFailuresAcrossGroups(t *testing.T) {
	sys, err := New(Config{K: 8, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := sys.Network
	var victims []sbnet.SwitchID
	for pod := 0; pod < 8; pod++ {
		victims = append(victims, net.EdgeGroup(pod).Slots()[pod%4])
		victims = append(victims, net.AggGroup(pod).Slots()[(pod+1)%4])
	}
	for t2 := 0; t2 < 4; t2++ {
		victims = append(victims, net.CoreGroup(t2).Slots()[t2])
	}
	for i, v := range victims {
		if _, err := sys.FailNode(v, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatalf("failure %d (%s): %v", i, net.Name(v), err)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// 20 concurrent failures, one per group: every group exhausted its
	// n=1 pool but the network is whole.
	em, err := emu.New(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Deliver(emu.Host{Pod: 0, Rack: 0, Pos: 0}, emu.Host{Pod: 7, Rack: 3, Pos: 3}); err != nil {
		t.Fatalf("delivery after 20 concurrent failures: %v", err)
	}
}

// TestRandomizedLifecycleChaos runs a long random mix of node failures, link
// failures, diagnosis rounds, and repairs under the controller, checking
// invariants continuously. This is the system-level robustness test.
func TestRandomizedLifecycleChaos(t *testing.T) {
	sys, err := New(Config{K: 6, N: 2, Controller: controller.Config{CSReportThreshold: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	net, ctl := sys.Network, sys.Controller
	rng := rand.New(rand.NewSource(21))
	now := time.Duration(0)
	var offline []sbnet.SwitchID
	for step := 0; step < 200; step++ {
		now += time.Millisecond
		switch rng.Intn(4) {
		case 0: // node failure
			g := net.Groups()[rng.Intn(net.NumGroups())]
			victim := g.Slots()[rng.Intn(len(g.Slots()))]
			net.InjectNodeFailure(victim)
			if _, err := ctl.RecoverNode(victim, now); err != nil {
				if errors.Is(err, sbnet.ErrNoBackup) {
					// Group exhausted: repair someone.
					net.Switch(victim).Healthy = true
					continue
				}
				t.Fatalf("step %d: %v", step, err)
			}
			offline = append(offline, victim)
		case 1: // link failure edge<->agg in a random pod
			pod := rng.Intn(6)
			es := rng.Intn(3)
			as := rng.Intn(3)
			edge := net.EdgeGroup(pod).Slots()[es]
			agg := net.AggGroup(pod).Slots()[as]
			j := ((as-es)%3 + 3) % 3 // edge up-port reaching agg slot `as`
			if rng.Intn(2) == 0 {
				if err := net.InjectPortFailure(edge, 3+j); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := net.InjectPortFailure(agg, es); err != nil {
					t.Fatal(err)
				}
			}
			rec, err := ctl.ReportLinkFailure(
				EndPoint{Switch: edge, Port: 3 + j},
				EndPoint{Switch: agg, Port: es},
				now,
			)
			if err != nil && rec == nil {
				continue // pools exhausted on both sides
			}
			offline = append(offline, rec.Failed...)
		case 2: // diagnosis
			results, err := ctl.RunDiagnosis()
			if err != nil {
				t.Fatalf("step %d diagnosis: %v", step, err)
			}
			kept := offline[:0]
			for _, id := range offline {
				if net.Switch(id).Role == sbnet.RoleOffline {
					kept = append(kept, id)
				}
			}
			offline = kept
			_ = results
		case 3: // repair a random offline switch
			if len(offline) == 0 {
				continue
			}
			i := rng.Intn(len(offline))
			if net.Switch(offline[i]).Role != sbnet.RoleOffline {
				offline = append(offline[:i], offline[i+1:]...)
				continue
			}
			if err := ctl.RepairSwitch(offline[i]); err != nil {
				t.Fatalf("step %d repair: %v", step, err)
			}
			offline = append(offline[:i], offline[i+1:]...)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("step %d: invariants: %v", step, err)
		}
	}
	// The network must still deliver end to end.
	em, err := emu.New(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Deliver(emu.Host{Pod: 1, Rack: 0, Pos: 0}, emu.Host{Pod: 4, Rack: 2, Pos: 1}); err != nil {
		t.Fatalf("delivery after chaos: %v", err)
	}
}

// TestDetectionToRecoveryPipeline drives the full Section 4.1 pipeline:
// F10-style link monitors detect a gray failure (broken forwarding engine),
// both sides report, the controller replaces both ends, and the recovery
// record carries the measured detection latency.
func TestDetectionToRecoveryPipeline(t *testing.T) {
	sys, err := New(Config{K: 6, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net, ctl := sys.Network, sys.Controller
	edge := net.EdgeGroup(0).Slots()[0]
	agg := net.AggGroup(0).Slots()[0] // edge slot 0 up-port 0 <-> agg slot 0
	edgePort, aggPort := 3+0, 0

	// Ground truth: the edge-side interface fails at t=10ms. Probes
	// consult the network's interface oracle.
	faultAt := 10 * time.Millisecond
	now := time.Duration(0)
	lm, err := detect.NewLinkMonitor(detect.Config{Interval: time.Millisecond, MissThreshold: 3},
		func(detect.CheckKind) bool { return now < faultAt || net.InterfaceUp(edge, edgePort) },
		func(detect.CheckKind) bool { return now < faultAt || net.InterfaceUp(edge, edgePort) },
	)
	if err != nil {
		t.Fatal(err)
	}

	var rec *Recovery
	for now = time.Millisecond; now <= 30*time.Millisecond; now += time.Millisecond {
		if now == faultAt {
			if err := net.InjectPortFailure(edge, edgePort); err != nil {
				t.Fatal(err)
			}
		}
		evA, _, downA, downB := lm.Advance(now)
		if downA && downB && rec == nil {
			rec, err = ctl.ReportLinkFailureDetected(
				EndPoint{Switch: edge, Port: edgePort},
				EndPoint{Switch: agg, Port: aggPort},
				evA.At, evA.Latency,
			)
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if rec == nil {
		t.Fatal("detection never fired")
	}
	if len(rec.Failed) != 2 {
		t.Fatalf("replaced %d switches, want both ends", len(rec.Failed))
	}
	if rec.Detection != 3*time.Millisecond {
		t.Errorf("recovery carries detection %v, want the monitor's 3ms", rec.Detection)
	}
	// Total recovery well under the rerouting baseline's budget at the
	// same probing interval.
	if rec.Total() > rec.Detection+time.Millisecond {
		t.Errorf("recovery total %v; replacement overhead beyond detection should be sub-ms", rec.Total())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Diagnosis pins the fault on the edge side.
	results, err := ctl.RunDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Suspect.Switch == edge && r.Healthy {
			t.Error("faulty edge exonerated")
		}
		if r.Suspect.Switch == agg && !r.Exonerated {
			t.Error("healthy agg not exonerated")
		}
	}
}

// TestSyncCircuitRestoresAuthoritativeState covers the circuit-switch reboot
// path of Section 5.1 at system level.
func TestSyncCircuitRestoresAuthoritativeState(t *testing.T) {
	sys, err := New(Config{K: 4, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := sys.Network
	// Replace a switch so the authoritative config differs from the
	// factory layout, then wreck a circuit switch and resync.
	if _, _, err := net.Replace(net.AggGroup(0).Slots()[0]); err != nil {
		t.Fatal(err)
	}
	cs := net.CS2(0, 1)
	cs.Fail()
	cs.Repair()
	// A rebooted crossbar comes back with stale or scrambled state;
	// scramble it, confirm the invariants catch it, then let the
	// controller re-push the authoritative configuration.
	if _, err := cs.Apply([]circuit.Change{{A: 0, B: 2}, {A: 1, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err == nil {
		t.Fatal("scrambled circuit switch passed invariants")
	}
	if _, err := net.SyncCircuit(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after resync: %v", err)
	}
}
