package sharebackup

import (
	"strings"
	"testing"
	"time"
)

func TestTransientStudy(t *testing.T) {
	rows, err := TransientStudy(TransientConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TransientRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	sb := byName["ShareBackup"]
	ftRow := byName["fat-tree"]
	f10 := byName["F10"]

	// Nobody is permanently disconnected by a single agg failure.
	for _, r := range rows {
		if r.Disconnected != 0 {
			t.Errorf("%s: %d flows disconnected", r.Scheme, r.Disconnected)
		}
		if r.MaxSlowdown < 1-1e-9 {
			t.Errorf("%s: max slowdown %v < 1", r.Scheme, r.MaxSlowdown)
		}
	}

	// ShareBackup's only penalty is the sub-2ms recovery gap: with ~13s
	// flows the worst slowdown must be within a 0.1% of 1.
	if sb.Gap > 2*time.Millisecond {
		t.Errorf("ShareBackup gap = %v", sb.Gap)
	}
	if sb.MaxSlowdown > 1.001 {
		t.Errorf("ShareBackup max slowdown = %v; the recovery window should be invisible", sb.MaxSlowdown)
	}

	// Rerouting's penalty is lasting bandwidth loss: the worst-hit flow
	// must be clearly slower than anything ShareBackup shows.
	if ftRow.MaxSlowdown <= sb.MaxSlowdown {
		t.Errorf("fat-tree max slowdown %v not worse than ShareBackup %v", ftRow.MaxSlowdown, sb.MaxSlowdown)
	}
	if f10.MaxSlowdown <= sb.MaxSlowdown {
		t.Errorf("F10 max slowdown %v not worse than ShareBackup %v", f10.MaxSlowdown, sb.MaxSlowdown)
	}

	if !strings.Contains(sb.String(), "ShareBackup") {
		t.Error("row rendering broken")
	}
}
