package sharebackup

import (
	"fmt"
	"sync"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/ctlnet"
	"sharebackup/internal/ctlplane"
)

// This file is the replicated-controller benchmark behind `sbbench
// -ctlplane`: it prices the consensus layer the ctlnet server runs on —
// time to elect a first leader from a cold 3-replica cluster, time to elect
// a REPLACEMENT after the leader dies (the paper's availability story now
// depends on this, not just on switch failover), committed-proposal
// latency and throughput over loopback TCP, and the snapshot cost that
// bounds rebootstrap time after quorum loss.

// CtlplaneBenchConfig parameterizes CtlplaneBench.
type CtlplaneBenchConfig struct {
	// Smoke shrinks trial counts and the proposal batch to CI scale.
	// Metrics stay per-operation, so smoke runs gate against full-size
	// baselines.
	Smoke bool
}

// CtlplaneBenchResult is the machine-readable consensus benchmark output.
// Election numbers are dominated by the randomized election timeout (ticks
// of TickEvery), so they are reproducible across hosts to within scheduler
// noise; proposal numbers are loopback-TCP round trips and host-dependent.
type CtlplaneBenchResult struct {
	Experiment string `json:"experiment"`
	Smoke      bool   `json:"smoke,omitempty"`

	Replicas    int     `json:"replicas"`
	TickEveryMS float64 `json:"tick_every_ms"`

	ElectionTrials  int     `json:"election_trials"`
	FirstElectionMS float64 `json:"first_election_ms"` // cold start → first leader, mean
	FailoverMS      float64 `json:"failover_ms"`       // leader killed → replacement elected, mean

	Proposals        int64   `json:"proposals"`
	CommitNSOp       float64 `json:"commit_ns_op"` // sequential propose→commit round trip
	CommitsPerSec    float64 `json:"commits_per_sec"`
	PipelineDepth    int     `json:"pipeline_depth"`
	PipelinedPerSec  float64 `json:"pipelined_per_sec"` // concurrent proposers
	SnapshotNSOp     float64 `json:"snapshot_ns_op"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	SnapshotLogIndex uint64  `json:"snapshot_log_index"`

	// KACurve is the keep-alive-throughput-vs-agent-count sweep: each point
	// drives a batched agent fleet through one ctlnet server (multiplexed
	// readers, coalesced keep-alive frames) and records the sustained
	// ingest rate plus the server's steady-state goroutine count — which
	// must stay flat as agents grow.
	KACurve     []KAPoint `json:"ka_curve"`
	KAPerSec10k float64   `json:"ka_per_sec_10k"`

	// Storm batching: concurrent recovery proposals folded through a
	// BatchProposer. The ratio is recoveries committed per consensus round
	// — the whole point of batched consensus.
	StormRecoveries int64   `json:"storm_recoveries"`
	StormRounds     int64   `json:"storm_rounds"`
	StormBatchRatio float64 `json:"storm_batch_ratio"`
}

// KAPoint is one agent-count sample of the fleet throughput curve.
type KAPoint struct {
	Agents           int     `json:"agents"`
	Conns            int     `json:"conns"`
	GroupSize        int     `json:"group_size"`
	KAPerSec         float64 `json:"ka_per_sec"`
	ServerGoroutines int     `json:"server_goroutines"`
	WireErrors       int64   `json:"wire_errors"`
}

// benchCluster is a minimal 3-replica cluster over loopback TCP whose state
// machine just counts applied commands (the bench measures consensus, not
// the controller's recovery logic — RecoveryBench prices that).
type benchCluster struct {
	nodes      []*ctlplane.Node
	transports []*ctlplane.TCPTransport

	mu      sync.Mutex
	applied [][][]byte
}

// newBenchCluster builds the cluster. With decodeCmds false the apply hook
// just records raw blobs (the proposal benches use opaque payloads); with
// decodeCmds true it decodes ctlplane commands and expands CmdBatch into
// per-sub-command results, the contract the storm bench's BatchProposer
// needs.
func newBenchCluster(n int, tick time.Duration, decodeCmds bool) (*benchCluster, error) {
	bc := &benchCluster{applied: make([][][]byte, n)}
	peers := make([]int, n)
	addrs := make(map[int]string, n)
	transports := make([]*ctlplane.TCPTransport, n)
	var inboxMu sync.Mutex
	inboxes := make([]func(ctlplane.Message), n)
	deliver := func(m ctlplane.Message) {
		inboxMu.Lock()
		f := inboxes[m.To]
		inboxMu.Unlock()
		if f != nil {
			f(m)
		}
	}
	for i := 0; i < n; i++ {
		peers[i] = i
		tr, err := ctlplane.NewTCPTransport(i, map[int]string{i: "127.0.0.1:0"}, deliver)
		if err != nil {
			for _, t := range transports[:i] {
				t.Close()
			}
			return nil, err
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	for i := 0; i < n; i++ {
		transports[i].SetPeers(addrs)
	}
	bc.transports = transports
	for i := 0; i < n; i++ {
		i := i
		node := ctlplane.NewNode(ctlplane.NodeConfig{
			Raft:      ctlplane.RaftConfig{ID: i, Peers: peers, Seed: uint64(i)*7 + 13},
			TickEvery: tick,
			Transport: transports[i],
			Apply: func(data []byte) (any, error) {
				bc.mu.Lock()
				bc.applied[i] = append(bc.applied[i], data)
				k := len(bc.applied[i])
				bc.mu.Unlock()
				if !decodeCmds {
					return k, nil
				}
				cmd, err := ctlplane.DecodeCommand(data)
				if err != nil {
					return nil, err
				}
				if cmd.Kind != ctlplane.CmdBatch {
					return int(cmd.Switch), nil
				}
				out := make([]ctlplane.BatchResult, len(cmd.Sub))
				for j, sub := range cmd.Sub {
					sc, err := ctlplane.DecodeCommand(sub)
					if err != nil {
						out[j] = ctlplane.BatchResult{Err: err}
						continue
					}
					out[j] = ctlplane.BatchResult{Val: int(sc.Switch)}
				}
				return out, nil
			},
			Snapshot: func() []byte {
				bc.mu.Lock()
				defer bc.mu.Unlock()
				return ctlplane.EncodeReplayLog(bc.applied[i])
			},
			Restore: func(data []byte) error {
				rl, err := ctlplane.DecodeReplayLog(data)
				if err != nil {
					return err
				}
				bc.mu.Lock()
				bc.applied[i] = rl.Commands
				bc.mu.Unlock()
				return nil
			},
		})
		inboxMu.Lock()
		inboxes[i] = node.Deliver
		inboxMu.Unlock()
		bc.nodes = append(bc.nodes, node)
	}
	return bc, nil
}

// waitLeader polls for an elected leader among replicas not in exclude.
func (bc *benchCluster) waitLeader(exclude int, timeout time.Duration) (*ctlplane.Node, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, n := range bc.nodes {
			if i != exclude && n.IsLeader() {
				return n, nil
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil, fmt.Errorf("ctlplane bench: no leader within %v", timeout)
}

func (bc *benchCluster) close() {
	for _, n := range bc.nodes {
		n.Stop()
	}
	for _, t := range bc.transports {
		t.Close()
	}
}

// CtlplaneBench measures the replicated controller core. It returns an
// error — a benchmark failure, exit 2 in sbbench — when the cluster fails
// to elect (cold or after a leader kill) or loses a committed proposal.
func CtlplaneBench(cfg CtlplaneBenchConfig) (*CtlplaneBenchResult, error) {
	const (
		replicas = 3
		tick     = 2 * time.Millisecond
		depth    = 8
	)
	trials := 5
	proposals := int64(2000)
	if cfg.Smoke {
		trials = 2
		proposals = 300
	}
	res := &CtlplaneBenchResult{
		Experiment:     "ctlplane-consensus",
		Smoke:          cfg.Smoke,
		Replicas:       replicas,
		TickEveryMS:    float64(tick) / float64(time.Millisecond),
		ElectionTrials: trials,
		Proposals:      proposals,
		PipelineDepth:  depth,
	}

	// --- Election latency, cold and after a leader kill. Each trial is a
	// fresh cluster: failover timing only means anything measured from the
	// instant the old leader stops, and reusing a cluster would leave too
	// few survivors for a quorum by the second kill.
	var coldTotal, failTotal time.Duration
	for tr := 0; tr < trials; tr++ {
		bc, err := newBenchCluster(replicas, tick, false)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ld, err := bc.waitLeader(-1, 10*time.Second)
		if err != nil {
			bc.close()
			return nil, err
		}
		coldTotal += time.Since(start)

		killed := ld.ID()
		start = time.Now()
		ld.Stop()
		if _, err := bc.waitLeader(killed, 10*time.Second); err != nil {
			bc.close()
			return nil, err
		}
		failTotal += time.Since(start)
		bc.close()
	}
	res.FirstElectionMS = float64(coldTotal) / float64(trials) / float64(time.Millisecond)
	res.FailoverMS = float64(failTotal) / float64(trials) / float64(time.Millisecond)

	// --- Proposal latency and throughput on a steady cluster.
	bc, err := newBenchCluster(replicas, tick, false)
	if err != nil {
		return nil, err
	}
	defer bc.close()
	ld, err := bc.waitLeader(-1, 10*time.Second)
	if err != nil {
		return nil, err
	}
	payload := []byte("bench-command-of-plausible-size-0123456789abcdef")

	start := time.Now()
	for i := int64(0); i < proposals; i++ {
		if _, err := ld.Propose(payload, 5*time.Second); err != nil {
			return nil, fmt.Errorf("ctlplane bench: sequential propose %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	res.CommitNSOp = float64(elapsed.Nanoseconds()) / float64(proposals)
	res.CommitsPerSec = float64(proposals) / elapsed.Seconds()

	// Pipelined: depth concurrent proposers share the leader, modelling a
	// failure storm where every shard scan and link report proposes at
	// once.
	var wg sync.WaitGroup
	errCh := make(chan error, depth)
	per := proposals / depth
	start = time.Now()
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				if _, err := ld.Propose(payload, 5*time.Second); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed = time.Since(start)
	select {
	case err := <-errCh:
		return nil, fmt.Errorf("ctlplane bench: pipelined propose: %w", err)
	default:
	}
	res.PipelinedPerSec = float64(per*depth) / elapsed.Seconds()

	// --- Snapshot cost after the full proposal load.
	start = time.Now()
	snap, err := ld.TakeSnapshot(10 * time.Second)
	if err != nil {
		return nil, fmt.Errorf("ctlplane bench: snapshot: %w", err)
	}
	res.SnapshotNSOp = float64(time.Since(start).Nanoseconds())
	res.SnapshotBytes = int64(len(snap.Data))
	res.SnapshotLogIndex = snap.LastIndex
	if snap.LastIndex == 0 {
		return nil, fmt.Errorf("ctlplane bench: snapshot covers no log")
	}

	// --- Storm batching: many concurrent recovery proposals through a
	// BatchProposer on a fresh cluster with a command-decoding state
	// machine. 64 proposers modelling a pod-wide failure burst; the fold
	// ratio (recoveries per consensus round) is the batching win.
	sbc, err := newBenchCluster(replicas, tick, true)
	if err != nil {
		return nil, err
	}
	defer sbc.close()
	sld, err := sbc.waitLeader(-1, 10*time.Second)
	if err != nil {
		return nil, err
	}
	bp := ctlnet.NewBatchProposer(sld.Propose)
	const stormProposers, perProposer = 64, 4
	var swg sync.WaitGroup
	stormErr := make(chan error, stormProposers)
	for w := 0; w < stormProposers; w++ {
		swg.Add(1)
		go func(w int) {
			defer swg.Done()
			for i := 0; i < perProposer; i++ {
				id := w*perProposer + i
				data := ctlplane.Command{Kind: ctlplane.CmdRecoverNode, Switch: int32(id)}.Encode()
				val, err := bp.Propose(data, 5*time.Second)
				if err == nil {
					if got, ok := val.(int); !ok || got != id {
						err = fmt.Errorf("storm proposal %d got result %v", id, val)
					}
				}
				if err != nil {
					stormErr <- err
					return
				}
			}
		}(w)
	}
	swg.Wait()
	select {
	case err := <-stormErr:
		return nil, fmt.Errorf("ctlplane bench: storm propose: %w", err)
	default:
	}
	res.StormRecoveries = bp.Commands()
	res.StormRounds = bp.Rounds()
	if res.StormRounds > 0 {
		res.StormBatchRatio = float64(res.StormRecoveries) / float64(res.StormRounds)
	}
	if !cfg.Smoke && res.StormBatchRatio < 4 {
		return nil, fmt.Errorf("ctlplane bench: storm batch ratio %.1fx (%d recoveries / %d rounds), want >= 4x",
			res.StormBatchRatio, res.StormRecoveries, res.StormRounds)
	}

	// --- The 10k-agent curve: keep-alive ingest vs fleet size through one
	// ctlnet server. Smoke shrinks the measurement window, not the fleet —
	// the 10k point is the gated number either way.
	fleetWindow, fleetWarmup := time.Second, 300*time.Millisecond
	if cfg.Smoke {
		fleetWindow, fleetWarmup = 350*time.Millisecond, 150*time.Millisecond
	}
	for _, agents := range []int{1000, 4000, 10000} {
		fr, err := ctlnet.RunFleet(ctlnet.FleetConfig{
			Agents:   agents,
			Interval: 10 * time.Millisecond,
			Warmup:   fleetWarmup,
			Duration: fleetWindow,
		})
		if err != nil {
			return nil, fmt.Errorf("ctlplane bench: fleet %d agents: %w", agents, err)
		}
		if fr.KAs == 0 {
			return nil, fmt.Errorf("ctlplane bench: fleet %d agents: no keep-alives landed", agents)
		}
		res.KACurve = append(res.KACurve, KAPoint{
			Agents:           fr.Agents,
			Conns:            fr.Conns,
			GroupSize:        fr.GroupSize,
			KAPerSec:         fr.KAPerSec,
			ServerGoroutines: fr.ServerGoroutines,
			WireErrors:       fr.WireErrors,
		})
		if agents == 10000 {
			res.KAPerSec10k = fr.KAPerSec
		}
	}
	return res, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Election metrics are timeout-dominated and reproducible, but still get
// generous slack for scheduler noise; loopback round-trip metrics are
// host-dependent and get wall-clock tolerances.
func (r *CtlplaneBenchResult) GateMetrics() map[string]bench.Metric {
	return map[string]bench.Metric{
		"ctlplane.first_election_ms": {
			Value: r.FirstElectionMS, Unit: "ms", Better: "lower", Tolerance: 1.5,
		},
		"ctlplane.failover_ms": {
			Value: r.FailoverMS, Unit: "ms", Better: "lower", Tolerance: 1.5,
		},
		"ctlplane.commit_ns_op": {
			Value: r.CommitNSOp, Unit: "ns", Better: "lower", Tolerance: 1.5,
		},
		"ctlplane.commits_per_sec": {
			Value: r.CommitsPerSec, Unit: "commits/s", Better: "higher", Tolerance: 0.6,
		},
		"ctlplane.pipelined_per_sec": {
			Value: r.PipelinedPerSec, Unit: "commits/s", Better: "higher", Tolerance: 0.6,
		},
		"ctlplane.snapshot_ns_op": {
			Value: r.SnapshotNSOp, Unit: "ns", Better: "lower", Tolerance: 2.0,
		},
		"ctlplane.storm_batch_ratio": {
			Value: r.StormBatchRatio, Unit: "x", Better: "higher", Tolerance: 0.5,
		},
		"ctlnet.ka_per_sec_10k": {
			Value: r.KAPerSec10k, Unit: "ka/s", Better: "higher", Tolerance: 0.6,
		},
	}
}
