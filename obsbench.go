package sharebackup

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/obs"
	"sharebackup/internal/obs/tsdb"
)

// This file is the observability-overhead benchmark behind `sbbench -obs`:
// it prices the obs layer's own tax — the bus' event hot path (no-sink,
// ring-sink, JSONL-sink), the tsdb sampler, and the registry export/render
// paths — so the budget that keeps observability affordable at fleet scale
// is CI-enforced. Allocation on the event hot path is a hard benchmark
// failure, not a gated metric: the trajectory gate skips zero-valued
// baselines, so drift away from zero must fail loudly here instead.

// ObsBenchConfig parameterizes ObsBench.
type ObsBenchConfig struct {
	// Smoke shrinks the measurement loops to CI scale. Metrics stay
	// per-event, so smoke runs still gate against full-size baselines.
	Smoke bool
}

// ObsBenchResult is the machine-readable observability benchmark output.
// Timing numbers are host-dependent; the allocs-per-event numbers are
// structural (no-sink must be zero, ring-sink allocation-free steady state).
type ObsBenchResult struct {
	Experiment string `json:"experiment"`
	Smoke      bool   `json:"smoke,omitempty"`

	Events             int64   `json:"events"`
	EmitNoSinkNSOp     float64 `json:"emit_nosink_ns_op"`
	EmitNoSinkAllocsOp float64 `json:"emit_nosink_allocs_op"`
	EmitRingNSEvent    float64 `json:"emit_ring_ns_event"`
	EmitRingAllocsOp   float64 `json:"emit_ring_allocs_event"`
	MeteredNSEvent     float64 `json:"metered_ns_event"` // self-meter's own view of dispatch cost

	JSONLEvents      int64   `json:"jsonl_events"`
	EmitJSONLNSEvent float64 `json:"emit_jsonl_ns_event"`
	JSONLBytesEvent  float64 `json:"jsonl_bytes_event"`

	TSDBSamples     int64   `json:"tsdb_samples"`
	TSDBSeries      int     `json:"tsdb_series"`
	TSDBSampleNSOp  float64 `json:"tsdb_sample_ns_op"`
	TSDBSelfCPUNSOp float64 `json:"tsdb_self_cpu_ns_op"` // sampler's own CPU meter, per sample

	ExportNSOp   float64 `json:"export_ns_op"`
	PromTextNSOp float64 `json:"promtext_ns_op"`
}

// ObsBench measures the observability layer's self-overhead. It returns an
// error — a benchmark failure, exit 2 in sbbench — if the no-sink emit path
// allocates at all or the ring-sink dispatch path regrows per-event
// allocation.
func ObsBench(cfg ObsBenchConfig) (*ObsBenchResult, error) {
	events := int64(2_000_000)
	jsonlEvents := int64(100_000)
	samples := int64(2_000)
	renders := int64(2_000)
	if cfg.Smoke {
		events = 200_000
		jsonlEvents = 10_000
		samples = 200
		renders = 200
	}
	res := &ObsBenchResult{Experiment: "obs-overhead", Smoke: cfg.Smoke, Events: events, JSONLEvents: jsonlEvents}
	reg := obs.NewRegistry()

	// --- No-sink fast path: the cost every emit site pays in production
	// when tracing is off. Must be allocation-free.
	bus := &obs.Bus{}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := int64(0); i < events; i++ {
		if bus.Enabled() {
			ev := obs.NewEvent(obs.KindProbeMissed, time.Duration(i))
			bus.Emit(ev)
		}
	}
	res.EmitNoSinkNSOp = float64(time.Since(start).Nanoseconds()) / float64(events)
	runtime.ReadMemStats(&ms1)
	res.EmitNoSinkAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	if res.EmitNoSinkAllocsOp > 0.01 {
		return nil, fmt.Errorf("obs bench: no-sink emit path allocates %.3f times per event, want 0", res.EmitNoSinkAllocsOp)
	}

	// --- Ring-sink dispatch with the self-meter running: the cost of a
	// live in-memory trace (flight recorder, debughttp backlog). The
	// steady state must stay allocation-free event storms deep.
	bus.MeterOverhead(reg)
	ring := obs.NewRing(4096)
	bus.Attach(ring)
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for i := int64(0); i < events; i++ {
		if bus.Enabled() {
			ev := obs.NewEvent(obs.KindRecoveryComplete, time.Duration(i))
			ev.Switch = int32(i & 0xff)
			ev.Total = time.Duration(i)
			bus.Emit(ev)
		}
	}
	res.EmitRingNSEvent = float64(time.Since(start).Nanoseconds()) / float64(events)
	runtime.ReadMemStats(&ms1)
	res.EmitRingAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	bus.Detach(ring)
	if res.EmitRingAllocsOp > 0.5 {
		return nil, fmt.Errorf("obs bench: ring-sink emit path allocates %.2f times per event, want 0", res.EmitRingAllocsOp)
	}
	meterEvents := reg.Counter("obs.emit_events").Value()
	if meterEvents != events {
		return nil, fmt.Errorf("obs bench: self-meter counted %d events, emitted %d", meterEvents, events)
	}
	res.MeteredNSEvent = float64(reg.Counter("obs.emit_ns").Value()) / float64(events)

	// --- JSONL-sink serialization: the cost (ns and bytes per event) of
	// writing the trace stream sbtap consumes.
	jbus := &obs.Bus{}
	jbus.SetProc("bench")
	sink := obs.NewJSONLSink(io.Discard)
	sink.CountBytesIn(reg.Counter("obs.sink_jsonl_bytes"))
	jbus.Attach(sink)
	start = time.Now()
	for i := int64(0); i < jsonlEvents; i++ {
		ev := obs.NewEvent(obs.KindRecoveryComplete, time.Duration(i))
		ev.Switch = int32(i & 0xff)
		ev.Backup = int32(i & 0x7f)
		ev.Detail = "node"
		ev.Total = time.Duration(i)
		jbus.Emit(ev)
	}
	res.EmitJSONLNSEvent = float64(time.Since(start).Nanoseconds()) / float64(jsonlEvents)
	jbus.Detach(sink)
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("obs bench: jsonl sink: %w", err)
	}
	res.JSONLBytesEvent = float64(sink.Bytes()) / float64(jsonlEvents)
	if res.JSONLBytesEvent <= 0 {
		return nil, fmt.Errorf("obs bench: jsonl sink byte meter recorded nothing")
	}

	// --- tsdb sampler: the per-interval cost of keeping windowed history
	// for a realistically sized registry (the emulator exports a few dozen
	// metrics).
	popReg := obs.NewRegistry()
	for i := 0; i < 48; i++ {
		popReg.Counter(fmt.Sprintf("bench.counter_%02d", i)).Add(int64(i))
	}
	for i := 0; i < 16; i++ {
		popReg.Gauge(fmt.Sprintf("bench.gauge_%02d", i)).Set(int64(i))
	}
	for i := 0; i < 8; i++ {
		h := popReg.Histogram(fmt.Sprintf("bench.hist_%d", i))
		for v := int64(1); v <= 1000; v++ {
			h.Record(v)
		}
	}
	store := tsdb.New(tsdb.Config{Registry: popReg, Window: 600})
	epoch := time.Unix(1_700_000_000, 0)
	start = time.Now()
	for i := int64(0); i < samples; i++ {
		store.Sample(epoch.Add(time.Duration(i) * time.Second))
	}
	res.TSDBSampleNSOp = float64(time.Since(start).Nanoseconds()) / float64(samples)
	res.TSDBSamples = samples
	res.TSDBSeries = len(store.Names())
	res.TSDBSelfCPUNSOp = float64(popReg.Counter("tsdb.sample_cpu_ns").Value()) / float64(samples)
	if res.TSDBSeries == 0 {
		return nil, fmt.Errorf("obs bench: tsdb sampled no series")
	}

	// --- Registry export and Prometheus render of the same registry: the
	// scrape cost debughttp's /varz and /metricsz pay.
	start = time.Now()
	for i := int64(0); i < renders; i++ {
		ex := popReg.Export(false)
		if len(ex.Counters) == 0 {
			return nil, fmt.Errorf("obs bench: empty export")
		}
	}
	res.ExportNSOp = float64(time.Since(start).Nanoseconds()) / float64(renders)
	start = time.Now()
	for i := int64(0); i < renders; i++ {
		if len(popReg.PromText()) == 0 {
			return nil, fmt.Errorf("obs bench: empty prom text")
		}
	}
	res.PromTextNSOp = float64(time.Since(start).Nanoseconds()) / float64(renders)

	return res, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Host wall-clock metrics get wide tolerances; the structural zero-alloc
// contracts are enforced as hard errors in ObsBench itself (the gate skips
// zero-valued baselines). jsonl_bytes_event is deterministic serialization
// volume, so its tolerance is tight.
func (r *ObsBenchResult) GateMetrics() map[string]bench.Metric {
	return map[string]bench.Metric{
		"obs.emit_nosink_ns_op": {
			Value: r.EmitNoSinkNSOp, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"obs.emit_nosink_allocs_op": {
			Value: r.EmitNoSinkAllocsOp, Unit: "allocs", Better: "lower", Tolerance: 0.25,
		},
		"obs.emit_ring_ns_event": {
			Value: r.EmitRingNSEvent, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"obs.emit_ring_allocs_event": {
			Value: r.EmitRingAllocsOp, Unit: "allocs", Better: "lower", Tolerance: 0.25,
		},
		"obs.emit_jsonl_ns_event": {
			Value: r.EmitJSONLNSEvent, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"obs.jsonl_bytes_event": {
			Value: r.JSONLBytesEvent, Unit: "bytes", Better: "lower", Tolerance: 0.3,
		},
		"obs.tsdb_sample_ns_op": {
			Value: r.TSDBSampleNSOp, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"obs.export_ns_op": {
			Value: r.ExportNSOp, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
		"obs.promtext_ns_op": {
			Value: r.PromTextNSOp, Unit: "ns", Better: "lower", Tolerance: 1.0,
		},
	}
}
