package sharebackup

import (
	"context"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/fluid"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
	"sharebackup/internal/sweep"
	"sharebackup/internal/topo"
)

// This file is the benchmark harness shared by `sbexperiments -json` and the
// `sbbench` trajectory gate: the control-plane recovery benchmark (Section
// 5.3 phase latencies over many failovers) and the data-plane benchmark (an
// all-to-all fluid workload with full telemetry). Both results convert to
// the flat metric map internal/bench gates across commits.

// RecoveryBenchResult is the machine-readable recovery benchmark output:
// per-phase order statistics over many recoveries, per circuit technology
// and recovery kind. All latencies are microseconds, the unit of the
// paper's Section 5.3 budget.
type RecoveryBenchResult struct {
	Experiment string              `json:"experiment"`
	K          int                 `json:"k"`
	N          int                 `json:"n"`
	Trials     int                 `json:"trials_per_kind"`
	Techs      []RecoveryBenchTech `json:"techs"`
}

// RecoveryBenchTech is one circuit technology's phase breakdown.
type RecoveryBenchTech struct {
	Tech       string                       `json:"tech"`
	Recoveries int                          `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary   `json:"phases_us"`
	Kinds      map[string]RecoveryBenchKind `json:"kinds"`
}

// RecoveryBenchKind is the breakdown of one recovery kind ("node"/"link").
type RecoveryBenchKind struct {
	Recoveries int                        `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary `json:"phases_us"`
}

// RecoveryBenchConfig parameterizes RunRecoveryBench.
type RecoveryBenchConfig struct {
	// K is the fat-tree parameter (default 8) and N the backup pool size.
	K, N int
	// Trials is the number of node+link failover pairs per technology.
	Trials int
	// Workers sizes the sweep worker pool (0 = GOMAXPROCS). The benchmark
	// runs in virtual time — each trial is a pure function of its index —
	// so results are bit-identical for any worker count.
	Workers int
	// Checkpoint, when set, is the sweep checkpoint file prefix (one file
	// per technology, suffixed ".<tech>"); with Resume, completed trials
	// are not re-run.
	Checkpoint string
	Resume     bool
	// TraceSink, when non-nil, additionally receives every trial's events,
	// shard-tagged so concurrent trials can be told apart (pass the sink
	// from obs.TraceSinkToFile).
	TraceSink obs.Sink
}

// recoverySpan is one recovery's phase latencies as carried between a sweep
// shard and the merge; JSON-tagged so shards checkpoint.
type recoverySpan struct {
	Kind        string        `json:"kind"`
	DetectionNS time.Duration `json:"detection_ns"`
	ReportNS    time.Duration `json:"report_ns"`
	ReconfigNS  time.Duration `json:"reconfig_ns"`
	TotalNS     time.Duration `json:"total_ns"`
}

// RecoveryBench drives trials node and link failovers per circuit
// technology, collecting their recovery spans on a private event bus.
// Detection latency is varied by shifting the failure time against the last
// heartbeat, as real failures land at arbitrary probe phases.
func RecoveryBench(k, n, trials int) (*RecoveryBenchResult, error) {
	return RunRecoveryBench(RecoveryBenchConfig{K: k, N: n, Trials: trials})
}

// RunRecoveryBench is RecoveryBench with the trials sharded across a sweep
// worker pool: each trial builds private systems on a private bus, so trials
// are independent and the merged phase samples are bit-identical to the
// sequential run.
func RunRecoveryBench(cfg RecoveryBenchConfig) (*RecoveryBenchResult, error) {
	k, n, trials := cfg.K, cfg.N, cfg.Trials
	if k == 0 {
		k = 8
	}
	res := &RecoveryBenchResult{Experiment: "recovery-latency", K: k, N: n, Trials: trials}
	for _, tech := range []Technology{Crosspoint, MEMS2D} {
		tech := tech
		checkpoint := ""
		if cfg.Checkpoint != "" {
			checkpoint = cfg.Checkpoint + "." + tech.String()
		}
		var spans [][]recoverySpan
		var err error
		if trials > 0 {
			spans, err = sweep.Run(context.Background(), sweep.Config{
				Name: "recovery-" + tech.String(), Shards: trials,
				Workers: cfg.Workers, Checkpoint: checkpoint, Resume: cfg.Resume,
			}, func(_ context.Context, sh sweep.Shard) ([]recoverySpan, error) {
				i := sh.Index
				bus := &obs.Bus{}
				col := obs.NewSpanCollector()
				bus.Attach(col)
				if cfg.TraceSink != nil {
					bus.Attach(&obs.ShardTagger{Shard: sh.ID(), Dst: cfg.TraceSink})
				}
				pod := i % k
				// Node failover: one agg switch per trial, failure time phased
				// against its heartbeat.
				sys, err := New(Config{K: k, N: n, Tech: tech, Obs: bus})
				if err != nil {
					return nil, err
				}
				probe := sys.Controller.Config().ProbeInterval
				victim := sys.Network.AggGroup(pod).Slots()[i%(k/2)]
				sys.Controller.Heartbeat(victim, 0)
				at := probe + time.Duration(i%7)*probe/8
				if _, err := sys.FailNode(victim, at); err != nil {
					return nil, err
				}
				// Link failover: fresh system so every trial starts with a full
				// backup pool.
				sys, err = New(Config{K: k, N: n, Tech: tech, Obs: bus})
				if err != nil {
					return nil, err
				}
				// Edge slot 0's up-port k/2 reaches agg slot 0's down-port 0
				// (rotation j=0) in every pod.
				edge := sys.Network.EdgeGroup(pod).Slots()[0]
				agg := sys.Network.AggGroup(pod).Slots()[0]
				if _, err := sys.FailLink(
					EndPoint{Switch: edge, Port: k / 2},
					EndPoint{Switch: agg, Port: 0},
					at,
				); err != nil {
					return nil, err
				}
				var out []recoverySpan
				for _, sp := range col.Spans() {
					if !sp.Complete {
						continue
					}
					out = append(out, recoverySpan{
						Kind: sp.Kind, DetectionNS: sp.Detection, ReportNS: sp.Report,
						ReconfigNS: sp.Reconfig, TotalNS: sp.Total,
					})
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
		}
		// Fold the per-trial spans back into breakdowns in shard order —
		// the exact sample order the sequential loop produced.
		all := &obs.Breakdown{}
		byKind := map[string]*obs.Breakdown{
			"node": {Kind: "node"}, "link": {Kind: "link"},
		}
		for _, trial := range spans {
			for _, sp := range trial {
				all.Add(sp.DetectionNS, sp.ReportNS, sp.ReconfigNS, sp.TotalNS)
				if b := byKind[sp.Kind]; b != nil {
					b.Add(sp.DetectionNS, sp.ReportNS, sp.ReconfigNS, sp.TotalNS)
				}
			}
		}
		bt := RecoveryBenchTech{
			Tech:       tech.String(),
			Recoveries: all.N(),
			PhasesUS:   all.Summaries(),
			Kinds:      make(map[string]RecoveryBenchKind),
		}
		for _, kind := range []string{"node", "link"} {
			b := byKind[kind]
			bt.Kinds[kind] = RecoveryBenchKind{Recoveries: b.N(), PhasesUS: b.Summaries()}
		}
		res.Techs = append(res.Techs, bt)
	}
	return res, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Recovery latencies are virtual-time deterministic, so the tolerance is
// tight: any drift means the control-plane model changed.
func (r *RecoveryBenchResult) GateMetrics() map[string]bench.Metric {
	out := make(map[string]bench.Metric)
	for _, t := range r.Techs {
		total := t.PhasesUS["total"]
		out["recovery."+t.Tech+".total_p50_us"] = bench.Metric{
			Value: total.Median, Unit: "us", Better: "lower", Tolerance: 0.05,
		}
		out["recovery."+t.Tech+".total_p99_us"] = bench.Metric{
			Value: total.P99, Unit: "us", Better: "lower", Tolerance: 0.05,
		}
	}
	return out
}

// DataplaneBenchConfig tunes the data-plane benchmark.
type DataplaneBenchConfig struct {
	// K is the fat-tree parameter (default 8: one host per edge switch →
	// 32 hosts, 992 flows all-to-all).
	K int
	// BytesPerFlow is the flow size (default 1e3, sized against the
	// 40 B/s host links so all-to-all completes in simulated seconds).
	BytesPerFlow float64
}

// DataplaneBenchResult is the machine-readable data-plane benchmark output.
// Simulated quantities (FCT, rates, recompute count) are deterministic;
// WallMS is host time and inherently noisy.
type DataplaneBenchResult struct {
	Experiment     string                `json:"experiment"`
	K              int                   `json:"k"`
	Flows          int                   `json:"flows"`
	WallMS         float64               `json:"wall_ms"`
	RateRecomputes int64                 `json:"rate_recomputes"`
	FCTUS          obs.HistogramSnapshot `json:"fct_us"`
	FlowRateBps    obs.HistogramSnapshot `json:"flow_rate_Bps"`
	LinkUtilPm     obs.HistogramSnapshot `json:"link_util_permille"`
}

// DataplaneBench runs an all-to-all workload over the first ECMP path of
// every host pair on a k fat-tree, with full telemetry into a private
// registry, and reports the FCT/rate/utilization distributions.
func DataplaneBench(cfg DataplaneBenchConfig) (*DataplaneBenchResult, error) {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.BytesPerFlow == 0 {
		cfg.BytesPerFlow = 1e3
	}
	ft, err := topo.NewFatTree(topo.Config{K: cfg.K, HostsPerEdge: 1, HostCapacity: 40})
	if err != nil {
		return nil, err
	}
	tel := fluid.NewTelemetry(obs.NewRegistry())
	sim := fluid.New(ft.Topology)
	sim.SetTelemetry(tel)
	n := ft.NumHosts()
	id := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			paths, err := ft.ECMPPaths(s, d)
			if err != nil {
				return nil, err
			}
			arrival := float64(s%4) * 0.25
			if err := sim.AddFlow(fluid.FlowID(id), cfg.BytesPerFlow, arrival, paths[(s+d)%len(paths)]); err != nil {
				return nil, err
			}
			id++
		}
	}
	start := time.Now()
	if err := sim.RunToCompletion(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	sim.SampleUtilization()
	return &DataplaneBenchResult{
		Experiment:     "dataplane-fluid",
		K:              cfg.K,
		Flows:          id,
		WallMS:         float64(wall.Nanoseconds()) / 1e6,
		RateRecomputes: tel.RateRecomputes.Value(),
		FCTUS:          tel.FCT.Snapshot(),
		FlowRateBps:    tel.FlowRate.Snapshot(),
		LinkUtilPm:     tel.LinkUtil.Snapshot(),
	}, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// The simulated distributions are deterministic (tight tolerance); the wall
// clock gets a wide one so machine noise doesn't trip the gate, while a
// genuine order-of-magnitude slowdown still does.
func (r *DataplaneBenchResult) GateMetrics() map[string]bench.Metric {
	return map[string]bench.Metric{
		"dataplane.fct_p50_us": {
			Value: float64(r.FCTUS.P50), Unit: "us", Better: "lower", Tolerance: 0.10,
		},
		"dataplane.fct_p99_us": {
			Value: float64(r.FCTUS.P99), Unit: "us", Better: "lower", Tolerance: 0.10,
		},
		"dataplane.rate_recomputes": {
			Value: float64(r.RateRecomputes), Better: "lower", Tolerance: 0.10,
		},
		"dataplane.wall_ms": {
			Value: r.WallMS, Unit: "ms", Better: "lower", Tolerance: 2.0,
		},
	}
}
