package sharebackup

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"sharebackup/internal/bench"
	"sharebackup/internal/fluid"
	"sharebackup/internal/metrics"
	"sharebackup/internal/obs"
	"sharebackup/internal/sweep"
	"sharebackup/internal/topo"
)

// This file is the benchmark harness shared by `sbexperiments -json` and the
// `sbbench` trajectory gate: the control-plane recovery benchmark (Section
// 5.3 phase latencies over many failovers) and the data-plane benchmark (an
// all-to-all fluid workload with full telemetry). Both results convert to
// the flat metric map internal/bench gates across commits.

// RecoveryBenchResult is the machine-readable recovery benchmark output:
// per-phase order statistics over many recoveries, per circuit technology
// and recovery kind. All latencies are microseconds, the unit of the
// paper's Section 5.3 budget.
type RecoveryBenchResult struct {
	Experiment string              `json:"experiment"`
	K          int                 `json:"k"`
	N          int                 `json:"n"`
	Trials     int                 `json:"trials_per_kind"`
	Techs      []RecoveryBenchTech `json:"techs"`
}

// RecoveryBenchTech is one circuit technology's phase breakdown.
type RecoveryBenchTech struct {
	Tech       string                       `json:"tech"`
	Recoveries int                          `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary   `json:"phases_us"`
	Kinds      map[string]RecoveryBenchKind `json:"kinds"`
}

// RecoveryBenchKind is the breakdown of one recovery kind ("node"/"link").
type RecoveryBenchKind struct {
	Recoveries int                        `json:"recoveries"`
	PhasesUS   map[string]metrics.Summary `json:"phases_us"`
}

// RecoveryBenchConfig parameterizes RunRecoveryBench.
type RecoveryBenchConfig struct {
	// K is the fat-tree parameter (default 8) and N the backup pool size.
	K, N int
	// Trials is the number of node+link failover pairs per technology.
	Trials int
	// Workers sizes the sweep worker pool (0 = GOMAXPROCS). The benchmark
	// runs in virtual time — each trial is a pure function of its index —
	// so results are bit-identical for any worker count.
	Workers int
	// Checkpoint, when set, is the sweep checkpoint file prefix (one file
	// per technology, suffixed ".<tech>"); with Resume, completed trials
	// are not re-run.
	Checkpoint string
	Resume     bool
	// TraceSink, when non-nil, additionally receives every trial's events,
	// shard-tagged so concurrent trials can be told apart (pass the sink
	// from obs.TraceSinkToFile).
	TraceSink obs.Sink
}

// recoverySpan is one recovery's phase latencies as carried between a sweep
// shard and the merge; JSON-tagged so shards checkpoint.
type recoverySpan struct {
	Kind        string        `json:"kind"`
	DetectionNS time.Duration `json:"detection_ns"`
	ReportNS    time.Duration `json:"report_ns"`
	ReconfigNS  time.Duration `json:"reconfig_ns"`
	TotalNS     time.Duration `json:"total_ns"`
}

// RecoveryBench drives trials node and link failovers per circuit
// technology, collecting their recovery spans on a private event bus.
// Detection latency is varied by shifting the failure time against the last
// heartbeat, as real failures land at arbitrary probe phases.
func RecoveryBench(k, n, trials int) (*RecoveryBenchResult, error) {
	return RunRecoveryBench(RecoveryBenchConfig{K: k, N: n, Trials: trials})
}

// RunRecoveryBench is RecoveryBench with the trials sharded across a sweep
// worker pool: each trial builds private systems on a private bus, so trials
// are independent and the merged phase samples are bit-identical to the
// sequential run.
func RunRecoveryBench(cfg RecoveryBenchConfig) (*RecoveryBenchResult, error) {
	k, n, trials := cfg.K, cfg.N, cfg.Trials
	if k == 0 {
		k = 8
	}
	res := &RecoveryBenchResult{Experiment: "recovery-latency", K: k, N: n, Trials: trials}
	for _, tech := range []Technology{Crosspoint, MEMS2D} {
		tech := tech
		checkpoint := ""
		if cfg.Checkpoint != "" {
			checkpoint = cfg.Checkpoint + "." + tech.String()
		}
		var spans [][]recoverySpan
		var err error
		if trials > 0 {
			spans, err = sweep.Run(context.Background(), sweep.Config{
				Name: "recovery-" + tech.String(), Shards: trials,
				Workers: cfg.Workers, Checkpoint: checkpoint, Resume: cfg.Resume,
			}, func(_ context.Context, sh sweep.Shard) ([]recoverySpan, error) {
				i := sh.Index
				bus := &obs.Bus{}
				col := obs.NewSpanCollector()
				bus.Attach(col)
				if cfg.TraceSink != nil {
					bus.Attach(&obs.ShardTagger{Shard: sh.ID(), Dst: cfg.TraceSink})
				}
				pod := i % k
				// Node failover: one agg switch per trial, failure time phased
				// against its heartbeat.
				sys, err := New(Config{K: k, N: n, Tech: tech, Obs: bus})
				if err != nil {
					return nil, err
				}
				probe := sys.Controller.Config().ProbeInterval
				victim := sys.Network.AggGroup(pod).Slots()[i%(k/2)]
				sys.Controller.Heartbeat(victim, 0)
				at := probe + time.Duration(i%7)*probe/8
				if _, err := sys.FailNode(victim, at); err != nil {
					return nil, err
				}
				// Link failover: fresh system so every trial starts with a full
				// backup pool.
				sys, err = New(Config{K: k, N: n, Tech: tech, Obs: bus})
				if err != nil {
					return nil, err
				}
				// Edge slot 0's up-port k/2 reaches agg slot 0's down-port 0
				// (rotation j=0) in every pod.
				edge := sys.Network.EdgeGroup(pod).Slots()[0]
				agg := sys.Network.AggGroup(pod).Slots()[0]
				if _, err := sys.FailLink(
					EndPoint{Switch: edge, Port: k / 2},
					EndPoint{Switch: agg, Port: 0},
					at,
				); err != nil {
					return nil, err
				}
				var out []recoverySpan
				for _, sp := range col.Spans() {
					if !sp.Complete {
						continue
					}
					out = append(out, recoverySpan{
						Kind: sp.Kind, DetectionNS: sp.Detection, ReportNS: sp.Report,
						ReconfigNS: sp.Reconfig, TotalNS: sp.Total,
					})
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
		}
		// Fold the per-trial spans back into breakdowns in shard order —
		// the exact sample order the sequential loop produced.
		all := &obs.Breakdown{}
		byKind := map[string]*obs.Breakdown{
			"node": {Kind: "node"}, "link": {Kind: "link"},
		}
		for _, trial := range spans {
			for _, sp := range trial {
				all.Add(sp.DetectionNS, sp.ReportNS, sp.ReconfigNS, sp.TotalNS)
				if b := byKind[sp.Kind]; b != nil {
					b.Add(sp.DetectionNS, sp.ReportNS, sp.ReconfigNS, sp.TotalNS)
				}
			}
		}
		bt := RecoveryBenchTech{
			Tech:       tech.String(),
			Recoveries: all.N(),
			PhasesUS:   all.Summaries(),
			Kinds:      make(map[string]RecoveryBenchKind),
		}
		for _, kind := range []string{"node", "link"} {
			b := byKind[kind]
			bt.Kinds[kind] = RecoveryBenchKind{Recoveries: b.N(), PhasesUS: b.Summaries()}
		}
		res.Techs = append(res.Techs, bt)
	}
	return res, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// Recovery latencies are virtual-time deterministic, so the tolerance is
// tight: any drift means the control-plane model changed.
func (r *RecoveryBenchResult) GateMetrics() map[string]bench.Metric {
	out := make(map[string]bench.Metric)
	for _, t := range r.Techs {
		total := t.PhasesUS["total"]
		out["recovery."+t.Tech+".total_p50_us"] = bench.Metric{
			Value: total.Median, Unit: "us", Better: "lower", Tolerance: 0.05,
		}
		out["recovery."+t.Tech+".total_p99_us"] = bench.Metric{
			Value: total.P99, Unit: "us", Better: "lower", Tolerance: 0.05,
		}
	}
	return out
}

// DataplaneBenchConfig tunes the data-plane benchmark.
type DataplaneBenchConfig struct {
	// K is the fat-tree parameter (default 8: one host per edge switch →
	// 32 hosts, 992 flows all-to-all).
	K int
	// BytesPerFlow is the base flow size (default 1e3, sized against the
	// 40 B/s host links so all-to-all completes in simulated seconds).
	// Actual sizes fan out over 0.5×..2.25× so the FCT distribution is
	// non-degenerate.
	BytesPerFlow float64
	// Workers bounds the simulator worker pool for parallel component
	// fills (0 = GOMAXPROCS). Results are bit-identical for any value.
	Workers int
	// Smoke shrinks the storm comparison to CI scale. Smoke storm numbers
	// are reported but excluded from GateMetrics, so they never gate
	// against a full-size baseline.
	Smoke bool
	// SkipStorm skips the storm comparison entirely (unit tests of the
	// all-to-all section).
	SkipStorm bool
}

// DataplaneBenchResult is the machine-readable data-plane benchmark output.
// Simulated quantities (FCT, rates, recompute counts and work) are
// deterministic; WallMS, EventsPerSec and AllocsPerEvent are host-dependent.
type DataplaneBenchResult struct {
	Experiment        string                `json:"experiment"`
	K                 int                   `json:"k"`
	Flows             int                   `json:"flows"`
	Workers           int                   `json:"workers"`
	Events            int64                 `json:"events"`
	WallMS            float64               `json:"wall_ms"`
	EventsPerSec      float64               `json:"events_per_sec"`
	AllocsPerEvent    float64               `json:"allocs_per_event"`
	RateRecomputes    int64                 `json:"rate_recomputes"`
	RateRecomputeWork int64                 `json:"rate_recompute_work"`
	FCTUS             obs.HistogramSnapshot `json:"fct_us"`
	// FlowRateMilliBps is the completion-rate histogram in milli-bytes/s:
	// experiment capacities are O(1..100) bytes/s, so whole-byte buckets
	// rounded most rates to zero and the old flow_rate_Bps gate guarded a
	// degenerate distribution.
	FlowRateMilliBps  obs.HistogramSnapshot `json:"flow_rate_mBps"`
	LinkUtilPm        obs.HistogramSnapshot `json:"link_util_permille"`
	RecomputeWorkHist obs.HistogramSnapshot `json:"recompute_work_per_pass"`
	Storm             *StormBenchResult     `json:"storm,omitempty"`
	StormK48          *StormScaleResult     `json:"storm_k48,omitempty"`
}

// DataplaneBench runs a staggered all-to-all workload over the first ECMP
// path of every host pair on a k fat-tree with full telemetry, then the
// reroute-storm comparison (StormBench), and reports the FCT/rate/
// utilization distributions plus the event-processing cost metrics.
func DataplaneBench(cfg DataplaneBenchConfig) (*DataplaneBenchResult, error) {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.BytesPerFlow == 0 {
		cfg.BytesPerFlow = 1e3
	}
	ft, err := topo.NewFatTree(topo.Config{K: cfg.K, HostsPerEdge: 1, HostCapacity: 40})
	if err != nil {
		return nil, err
	}
	tel := fluid.NewTelemetry(obs.NewRegistry())
	sim := fluid.New(ft.Topology)
	sim.SetTelemetry(tel)
	if cfg.Workers > 0 {
		sim.SetWorkers(cfg.Workers)
	}
	n := ft.NumHosts()
	id := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			paths, err := ft.PathStore().Paths(s, d)
			if err != nil {
				return nil, err
			}
			// Stagger arrivals over ~6 simulated seconds and fan sizes over
			// 0.5×..2.25× so flows genuinely overlap and complete apart:
			// identical arrivals/sizes made every FCT equal and the
			// percentile gates vacuous.
			arrival := float64((s*7+d*3)%29) * 0.2
			bytes := cfg.BytesPerFlow * (0.5 + 0.25*float64((s+d)%8))
			if err := sim.AddFlow(fluid.FlowID(id), bytes, arrival, paths[(s+d)%len(paths)]); err != nil {
				return nil, err
			}
			id++
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	// Sample link utilization over 64 unit-time steps while flows are
	// actually in flight — arrivals span ~6 simulated seconds, so this
	// window sees the ramp-up and the fully loaded fabric. (The old
	// post-drain sample recorded an idle fabric: link_util_permille was
	// all-zero and its gate guarded nothing. And sampling *every* unit of
	// the ~4e4-second drain would dominate wall time.)
	for step := 1; step <= 64 && (sim.PendingCount() > 0 || sim.ActiveCount() > 0); step++ {
		if err := sim.Run(float64(step)); err != nil {
			return nil, err
		}
		if sim.ActiveCount() > 0 {
			sim.SampleUtilization()
		}
	}
	if err := sim.RunToCompletion(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	events := tel.FlowsStarted.Value() + tel.FlowsCompleted.Value() +
		tel.Reroutes.Value() + tel.Stalls.Value()
	res := &DataplaneBenchResult{
		Experiment:        "dataplane-fluid",
		K:                 cfg.K,
		Flows:             id,
		Workers:           sim.Workers(),
		Events:            events,
		WallMS:            float64(wall.Nanoseconds()) / 1e6,
		EventsPerSec:      float64(events) / wall.Seconds(),
		AllocsPerEvent:    float64(ms1.Mallocs-ms0.Mallocs) / float64(events),
		RateRecomputes:    tel.RateRecomputes.Value(),
		RateRecomputeWork: tel.RateRecomputeWork.Value(),
		FCTUS:             tel.FCT.Snapshot(),
		FlowRateMilliBps:  tel.FlowRate.Snapshot(),
		LinkUtilPm:        tel.LinkUtil.Snapshot(),
		RecomputeWorkHist: tel.RecomputeWork.Snapshot(),
	}
	if !cfg.SkipStorm {
		storm := StormBenchConfig{Workers: cfg.Workers}
		scale := StormScaleConfig{Workers: cfg.Workers}
		if cfg.Smoke {
			storm = StormBenchConfig{K: 8, HostsPerEdge: 2, FlowsPerHost: 6, WaveBatch: 64, Workers: cfg.Workers, Smoke: true}
			scale = StormScaleConfig{K: 8, HostsPerEdge: 2, FlowsPerHost: 4, WaveBatch: 64, Workers: cfg.Workers, Smoke: true}
		}
		res.Storm, err = StormBench(storm)
		if err != nil {
			return nil, err
		}
		res.StormK48, err = StormScaleBench(scale)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// GateMetrics flattens the result into the trajectory gate's metric map.
// The simulated distributions are deterministic (tight tolerance); host-time
// metrics (wall clock, events/sec) get wide ones so machine noise doesn't
// trip the gate, while a genuine order-of-magnitude slowdown still does.
// Smoke-mode storm numbers are omitted: the gate ignores one-sided metrics,
// so a smoke run simply doesn't exercise the storm gates.
func (r *DataplaneBenchResult) GateMetrics() map[string]bench.Metric {
	m := map[string]bench.Metric{
		"dataplane.fct_p50_us": {
			Value: float64(r.FCTUS.P50), Unit: "us", Better: "lower", Tolerance: 0.10,
		},
		"dataplane.fct_p99_us": {
			Value: float64(r.FCTUS.P99), Unit: "us", Better: "lower", Tolerance: 0.10,
		},
		"dataplane.rate_recomputes": {
			Value: float64(r.RateRecomputes), Better: "lower", Tolerance: 0.10,
		},
		"dataplane.rate_recompute_work": {
			Value: float64(r.RateRecomputeWork), Unit: "incidences", Better: "lower", Tolerance: 0.10,
		},
		"dataplane.wall_ms": {
			Value: r.WallMS, Unit: "ms", Better: "lower", Tolerance: 2.0,
		},
		"dataplane.events_per_sec": {
			Value: r.EventsPerSec, Unit: "events/s", Better: "higher", Tolerance: 0.67,
		},
		"dataplane.allocs_per_event": {
			Value: r.AllocsPerEvent, Unit: "allocs", Better: "lower", Tolerance: 0.25,
		},
	}
	if r.Storm != nil && !r.Storm.Smoke {
		m["dataplane.storm_work_ratio"] = bench.Metric{
			Value: r.Storm.WorkRatio, Unit: "x", Better: "higher", Tolerance: 0.25,
		}
		m["dataplane.storm_wall_speedup"] = bench.Metric{
			Value: r.Storm.WallSpeedup, Unit: "x", Better: "higher", Tolerance: 0.67,
		}
		m["dataplane.storm_events_per_sec"] = bench.Metric{
			Value: r.Storm.EventsPerSec, Unit: "events/s", Better: "higher", Tolerance: 0.67,
		}
	}
	if r.StormK48 != nil && !r.StormK48.Smoke {
		m["dataplane.storm_k48_events_per_sec"] = bench.Metric{
			Value: r.StormK48.EventsPerSec, Unit: "events/s", Better: "higher", Tolerance: 0.67,
		}
		// Parallel speedup is bounded by the host's core count; the wide
		// tolerance absorbs scheduler noise while still catching a pool
		// that stopped engaging at all on multi-core hosts.
		m["dataplane.par_speedup"] = bench.Metric{
			Value: r.StormK48.ParSpeedup, Unit: "x", Better: "higher", Tolerance: 0.9,
		}
	}
	return m
}

// StormBenchConfig parameterizes the reroute-storm comparison.
type StormBenchConfig struct {
	// K and HostsPerEdge size the fabric (default k=16 with 4 hosts per
	// edge: 512 hosts). FlowsPerHost sizes the offered load (default 20 →
	// 10240 flows).
	K, HostsPerEdge, FlowsPerHost int
	// Waves is the number of reroute storms (default 3), WaveBatch the
	// reroutes per storm (default 256).
	Waves, WaveBatch int
	// Workers bounds the incremental engine's worker pool (0 = GOMAXPROCS).
	Workers int
	// Smoke marks a reduced-scale run (set by DataplaneBench's smoke mode);
	// carried into the result so GateMetrics can exclude it.
	Smoke bool
}

// StormBenchResult compares the incremental engine against the retained
// full-recompute reference on an identical reroute-storm workload: ~85%
// rack-local / 15% pod-local traffic with staggered arrivals, plus waves of
// ECMP reroutes mid-run. Both engines replay the exact same schedule; their
// FCTs must agree (MaxRelDiff is a hard error above 1e-3, not a gate).
type StormBenchResult struct {
	Experiment    string  `json:"experiment"`
	K             int     `json:"k"`
	Flows         int     `json:"flows"`
	Events        int64   `json:"events"`
	Smoke         bool    `json:"smoke,omitempty"`
	IncWallMS     float64 `json:"inc_wall_ms"`
	FullWallMS    float64 `json:"full_wall_ms"`
	WallSpeedup   float64 `json:"wall_speedup"`
	IncWork       int64   `json:"inc_recompute_work"`
	FullWork      int64   `json:"full_recompute_work"`
	WorkRatio     float64 `json:"work_ratio"`
	EventsPerSec  float64 `json:"events_per_sec"`
	MaxRelDiffFCT float64 `json:"fct_max_rel_diff"`
}

// stormFlow is one generated flow of the storm schedule.
type stormFlow struct {
	bytes, arrival float64
	path           topo.Path
}

// stormReroute is one reroute of a storm wave.
type stormReroute struct {
	id   fluid.FlowID
	path topo.Path
}

// stormWave is one reroute storm: a batch of path changes applied at one
// simulated time.
type stormWave struct {
	at       float64
	reroutes []stormReroute
}

// buildStormSchedule generates the deterministic storm workload (seeded
// PRNG): ~85% rack-local / 15% pod-local flows with staggered arrivals, plus
// waves of ECMP reroutes mid-run. Shared by StormBench (k=16 incremental vs
// full comparison) and StormScaleBench (k=48 scale run).
func buildStormSchedule(k, hostsPerEdge, flowsPerHost, nWaves, waveBatch int) (*topo.FatTree, []stormFlow, []stormWave, error) {
	ft, err := topo.NewFatTree(topo.Config{K: k, HostsPerEdge: hostsPerEdge, HostCapacity: 40})
	if err != nil {
		return nil, nil, nil, err
	}
	r := rand.New(rand.NewSource(7))
	n := ft.NumHosts()
	per := hostsPerEdge
	perPod := (k / 2) * per
	flows := make([]stormFlow, 0, n*flowsPerHost)
	var multipath []fluid.FlowID
	for i := 0; i < n*flowsPerHost; i++ {
		src := i % n
		var dst int
		if per > 1 && r.Float64() < 0.85 {
			// Rack-local: another host under the same edge switch — the
			// locality skew of real DC traffic, and the regime where
			// component scoping pays.
			base := (src / per) * per
			dst = base + r.Intn(per)
			for dst == src {
				dst = base + r.Intn(per)
			}
		} else {
			// Pod-local cross-rack: multi-path (reroutable through the
			// pod's aggs) but confined to the pod, keeping link-sharing
			// components pod-sized. Inter-pod flows would glue the fabric
			// into one component through the core.
			base := (src / perPod) * perPod
			dst = base + r.Intn(perPod)
			for dst == src || dst/per == src/per {
				dst = base + r.Intn(perPod)
			}
		}
		paths, err := ft.PathStore().Paths(src, dst)
		if err != nil {
			return nil, nil, nil, err
		}
		flows = append(flows, stormFlow{
			bytes:   500 + r.Float64()*1500,
			arrival: r.Float64() * 10,
			path:    paths[r.Intn(len(paths))],
		})
		if len(paths) > 1 {
			multipath = append(multipath, fluid.FlowID(i))
		}
	}
	waves := make([]stormWave, nWaves)
	for w := range waves {
		waves[w].at = 4 + 2*float64(w)
		batch := waveBatch
		if batch > len(multipath) {
			batch = len(multipath)
		}
		for b := 0; b < batch; b++ {
			id := multipath[r.Intn(len(multipath))]
			src := int(id) % n
			p := flows[id].path
			dstNode := p.Nodes[len(p.Nodes)-1]
			paths, err := ft.PathStore().Paths(src, ft.Node(dstNode).Index)
			if err != nil {
				return nil, nil, nil, err
			}
			waves[w].reroutes = append(waves[w].reroutes, stormReroute{
				id:   id,
				path: paths[r.Intn(len(paths))],
			})
		}
	}
	return ft, flows, waves, nil
}

// replayStorm runs one engine over the storm schedule, measuring wall time
// over the whole replay (adds, waves, drain). Workers 0 keeps the
// simulator's GOMAXPROCS default. With release set, completed flows are
// released from OnComplete (exercising slot recycling the way long-running
// storm replays would). Returns wall time, recompute work, event count, and
// the per-flow FCTs.
func replayStorm(ft *topo.FatTree, flows []stormFlow, waves []stormWave, full bool, workers int, release bool) (time.Duration, int64, int64, []float64, error) {
	sim := fluid.New(ft.Topology)
	sim.ForceFullRecompute(full)
	if workers > 0 {
		sim.SetWorkers(workers)
	}
	fcts := make([]float64, len(flows))
	var relErr error
	if release {
		sim.OnComplete = func(f *fluid.Flow) {
			fcts[int(f.ID())] = f.Finish()
			if err := sim.ReleaseFlow(f.ID()); err != nil && relErr == nil {
				relErr = err
			}
		}
	}
	start := time.Now()
	for i, f := range flows {
		if err := sim.AddFlow(fluid.FlowID(i), f.bytes, f.arrival, f.path); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	events := int64(len(flows))
	for _, wv := range waves {
		if err := sim.Run(wv.at); err != nil {
			return 0, 0, 0, nil, err
		}
		for _, rr := range wv.reroutes {
			if release {
				if fl := sim.Flow(rr.id); fl == nil || fl.Done() {
					continue
				}
			} else if sim.Flow(rr.id).Done() {
				continue
			}
			if err := sim.SetPath(rr.id, rr.path); err != nil {
				return 0, 0, 0, nil, err
			}
			events++
		}
	}
	if err := sim.RunToCompletion(); err != nil {
		return 0, 0, 0, nil, err
	}
	wall := time.Since(start)
	if relErr != nil {
		return 0, 0, 0, nil, relErr
	}
	if !release {
		for i := range flows {
			fcts[i] = sim.Flow(fluid.FlowID(i)).Finish()
		}
	}
	st := sim.Stats()
	return wall, st.RecomputeWork, events + st.HeapPops, fcts, nil
}

// StormBench generates the deterministic storm schedule once, replays it
// through the incremental engine and the forced-full reference, and reports
// the work and wall-clock ratios. This is the workload behind the
// `dataplane.storm_*` gate metrics and the EXPERIMENTS.md scale table.
func StormBench(cfg StormBenchConfig) (*StormBenchResult, error) {
	if cfg.K == 0 {
		cfg.K = 16
	}
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = 4
	}
	if cfg.FlowsPerHost == 0 {
		cfg.FlowsPerHost = 20
	}
	if cfg.Waves == 0 {
		cfg.Waves = 3
	}
	if cfg.WaveBatch == 0 {
		cfg.WaveBatch = 256
	}
	ft, flows, waves, err := buildStormSchedule(cfg.K, cfg.HostsPerEdge, cfg.FlowsPerHost, cfg.Waves, cfg.WaveBatch)
	if err != nil {
		return nil, err
	}

	incWall, incWork, events, incFCT, err := replayStorm(ft, flows, waves, false, cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	fullWall, fullWork, _, fullFCT, err := replayStorm(ft, flows, waves, true, cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	maxRel := 0.0
	for i := range incFCT {
		d := math.Abs(incFCT[i]-fullFCT[i]) / (math.Abs(fullFCT[i]) + 1)
		if d > maxRel {
			maxRel = d
		}
	}
	if maxRel > 1e-3 {
		return nil, fmt.Errorf("storm bench: incremental and full engines diverged: max relative FCT difference %g", maxRel)
	}
	return &StormBenchResult{
		Experiment:    "dataplane-storm",
		K:             cfg.K,
		Flows:         len(flows),
		Events:        events,
		Smoke:         cfg.Smoke,
		IncWallMS:     float64(incWall.Nanoseconds()) / 1e6,
		FullWallMS:    float64(fullWall.Nanoseconds()) / 1e6,
		WallSpeedup:   fullWall.Seconds() / incWall.Seconds(),
		IncWork:       incWork,
		FullWork:      fullWork,
		WorkRatio:     float64(fullWork) / float64(incWork),
		EventsPerSec:  float64(events) / incWall.Seconds(),
		MaxRelDiffFCT: maxRel,
	}, nil
}

// StormScaleConfig parameterizes the k=48 storm scale run.
type StormScaleConfig struct {
	// K and HostsPerEdge size the fabric (default k=48 with 2 hosts per
	// edge: 2304 hosts across 48 pods). FlowsPerHost sizes the offered load
	// (default 4 → 9216 flows spread over a far larger fabric than the k=16
	// storm, so components stay small and scoping dominates).
	K, HostsPerEdge, FlowsPerHost int
	// Waves is the number of reroute storms (default 2), WaveBatch the
	// reroutes per storm (default 512).
	Waves, WaveBatch int
	// Workers bounds the parallel replay's worker pool (0 = GOMAXPROCS).
	Workers int
	// Smoke marks a reduced-scale run; carried into the result so
	// GateMetrics can exclude it.
	Smoke bool
}

// StormScaleResult is the k=48 scale run: the same deterministic storm
// schedule replayed incrementally twice, once with a single worker and once
// with the configured pool, pinning the engine's determinism contract (FCTs
// must be bit-identical across worker counts — a hard error, not a gate) and
// measuring the parallel speedup. No forced-full reference replay: at this
// scale the reference engine's quadratic pass cost is the thing the
// incremental engine exists to avoid.
type StormScaleResult struct {
	Experiment   string  `json:"experiment"`
	K            int     `json:"k"`
	Flows        int     `json:"flows"`
	Events       int64   `json:"events"`
	Smoke        bool    `json:"smoke,omitempty"`
	Workers      int     `json:"workers"`
	Wall1MS      float64 `json:"wall_1worker_ms"`
	WallNMS      float64 `json:"wall_nworker_ms"`
	ParSpeedup   float64 `json:"par_speedup"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Deterministic records that the two replays' FCT vectors compared
	// bit-identical (always true in a returned result; divergence errors).
	Deterministic bool `json:"deterministic"`
}

// StormScaleBench builds the k=48 storm schedule and replays it with one
// worker and with the configured pool. Completed flows are released from
// OnComplete, so the run also exercises slot recycling under churn.
func StormScaleBench(cfg StormScaleConfig) (*StormScaleResult, error) {
	if cfg.K == 0 {
		cfg.K = 48
	}
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = 2
	}
	if cfg.FlowsPerHost == 0 {
		cfg.FlowsPerHost = 4
	}
	if cfg.Waves == 0 {
		cfg.Waves = 2
	}
	if cfg.WaveBatch == 0 {
		cfg.WaveBatch = 512
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ft, flows, waves, err := buildStormSchedule(cfg.K, cfg.HostsPerEdge, cfg.FlowsPerHost, cfg.Waves, cfg.WaveBatch)
	if err != nil {
		return nil, err
	}

	wall1, _, events, fct1, err := replayStorm(ft, flows, waves, false, 1, true)
	if err != nil {
		return nil, err
	}
	wallN, _, _, fctN, err := replayStorm(ft, flows, waves, false, workers, true)
	if err != nil {
		return nil, err
	}
	for i := range fct1 {
		if fct1[i] != fctN[i] {
			return nil, fmt.Errorf("storm scale bench: flow %d FCT differs across worker counts: 1 worker %v, %d workers %v",
				i, fct1[i], workers, fctN[i])
		}
	}
	return &StormScaleResult{
		Experiment:    "dataplane-storm-k48",
		K:             cfg.K,
		Flows:         len(flows),
		Events:        events,
		Smoke:         cfg.Smoke,
		Workers:       workers,
		Wall1MS:       float64(wall1.Nanoseconds()) / 1e6,
		WallNMS:       float64(wallN.Nanoseconds()) / 1e6,
		ParSpeedup:    wall1.Seconds() / wallN.Seconds(),
		EventsPerSec:  float64(events) / wallN.Seconds(),
		Deterministic: true,
	}, nil
}
