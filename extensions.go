package sharebackup

import (
	"fmt"

	"sharebackup/internal/failure"
	"sharebackup/internal/groups"
	"sharebackup/internal/metrics"
	"sharebackup/internal/topo"
)

// This file mechanizes the paper's Section 6 (conclusion) extensions:
// sharable backup on other topologies via generalized failure-group plans,
// non-uniform backup allocation weighted by device criticality, and
// activating idle backups for extra bandwidth.

// PlanRow is one failure-group plan's summary in the extensions study.
type PlanRow struct {
	Name          string
	Groups        int
	Switches      int
	Backups       int
	BackupRatio   float64
	MaxCSPorts    int     // largest circuit switch the plan needs
	WeightedRisk  float64 // sum over groups of criticality x overflow prob
	ExpectedUnpro float64 // expected number of overflowed groups
}

// planRow summarizes one plan under the paper's failure rate, weighting each
// group's overflow probability by its summed coverage criticality.
func planRow(name string, t *topo.Topology, plan *groups.Plan) PlanRow {
	row := PlanRow{
		Name:        name,
		Groups:      len(plan.Groups),
		Switches:    plan.TotalSwitches(),
		Backups:     plan.TotalBackups(),
		BackupRatio: plan.BackupRatio(),
	}
	for i := range plan.Groups {
		g := &plan.Groups[i]
		if p := g.CircuitPortsNeeded(); p > row.MaxCSPorts {
			row.MaxCSPorts = p
		}
		crit := 0.0
		for _, m := range g.Members {
			crit += groups.CoverageCriticality(t, m)
		}
		over := g.OverflowProbability(failure.SwitchFailureRate)
		row.WeightedRisk += crit * over
		row.ExpectedUnpro += over
	}
	return row
}

// ExtensionStudy compares failure-group plans across the paper's Section 6
// directions on a k-ary fat-tree and a similarly sized Jellyfish network:
//
//   - the paper's uniform fat-tree plan (n per group);
//   - a non-uniform plan with the same total budget, weighted by coverage
//     criticality (edge switches with single-homed racks get more backup);
//   - a degree-homogeneous plan for Jellyfish.
//
// The non-uniform plan must not increase the criticality-weighted risk at
// equal budget — the quantitative form of "more backup on critical devices
// and less backup on unimportant ones".
func ExtensionStudy(k int, seed int64) ([]PlanRow, error) {
	ft, err := topo.NewFatTree(topo.Config{K: k})
	if err != nil {
		return nil, err
	}
	uniform, err := groups.FatTreePlan(ft, 1)
	if err != nil {
		return nil, err
	}
	rows := []PlanRow{planRow("fat-tree uniform n=1", ft.Topology, uniform)}

	nonUniform, err := groups.FatTreePlan(ft, 0)
	if err != nil {
		return nil, err
	}
	budget := uniform.TotalBackups()
	if err := groups.AllocateGreedy(ft.Topology, nonUniform, budget,
		failure.SwitchFailureRate, groups.CoverageCriticality); err != nil {
		return nil, err
	}
	rows = append(rows, planRow("fat-tree non-uniform (greedy coverage-weighted, same budget)", ft.Topology, nonUniform))

	// A Jellyfish fabric with a comparable switch count.
	switches := 5 * k * k / 4
	deg := k / 2
	if switches*deg%2 != 0 {
		switches++
	}
	jf, err := topo.NewJellyfish(topo.JellyfishConfig{
		Switches: switches, Ports: k, NetDegree: deg, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	jplan, err := groups.ByDegreePlan(jf.Topology, k/2, 1)
	if err != nil {
		return nil, err
	}
	if err := jplan.Validate(jf.Topology); err != nil {
		return nil, err
	}
	rows = append(rows, planRow(fmt.Sprintf("jellyfish (%d switches) by-degree n=1", switches), jf.Topology, jplan))
	return rows, nil
}

// AugmentationRow reports the idle-backup activation measurement.
type AugmentationRow struct {
	Pod                 int
	FabricLinksAdded    int
	HostBandwidthAdded  float64
	SurvivedFailover    bool // backup still usable for recovery afterwards
	InvariantsHeldAfter bool
}

// AugmentationStudy activates idle backups in every pod, measures what they
// add, then fails a switch per pod to confirm fault tolerance is untouched.
func AugmentationStudy(k int) ([]AugmentationRow, error) {
	sys, err := New(Config{K: k, N: 1})
	if err != nil {
		return nil, err
	}
	net := sys.Network
	var rows []AugmentationRow
	for pod := 0; pod < k; pod++ {
		aug, err := net.ActivateIdleBackups(pod)
		if err != nil {
			return nil, err
		}
		row := AugmentationRow{
			Pod:                pod,
			FabricLinksAdded:   aug.AddedFabricCapacity(),
			HostBandwidthAdded: aug.AddedHostBandwidth(),
		}
		// Guaranteed fault tolerance: the augmented backup must still
		// cover a failure.
		victim := net.AggGroup(pod).Slots()[0]
		backup, _, err := net.Replace(victim)
		row.SurvivedFailover = err == nil && backup == aug.AggSw
		row.InvariantsHeldAfter = net.CheckInvariants() == nil
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtensionStudy renders the plan comparison as a table.
func RenderExtensionStudy(rows []PlanRow) *metrics.Table {
	tbl := &metrics.Table{
		Title:   "Section 6 extensions — failure-group plans",
		Headers: []string{"plan", "groups", "switches", "backups", "ratio", "max CS ports", "weighted risk", "E[overflowed groups]"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Name, r.Groups, r.Switches, r.Backups, r.BackupRatio, r.MaxCSPorts, r.WeightedRisk, r.ExpectedUnpro)
	}
	return tbl
}
