package sharebackup

import (
	"errors"
	"fmt"
	"time"

	"sharebackup/internal/controller"
	"sharebackup/internal/cost"
	"sharebackup/internal/failure"
	"sharebackup/internal/metrics"
	"sharebackup/internal/routing"
	"sharebackup/internal/sbnet"
)

// CapacityResult reports the measured failure-handling capacity of a
// ShareBackup deployment (Section 5.1).
type CapacityResult struct {
	K, N      int
	GroupSize int // k/2 switches share the backups

	// ToleratedSwitchFailures is the measured number of concurrent
	// switch failures one failure group survives (must equal N).
	ToleratedSwitchFailures int

	// LinkFailuresHandled is the measured number of link failures rooted
	// at one faulty switch that a group absorbs while consuming a single
	// backup, after offline diagnosis exonerates the healthy far ends.
	// Across n faulty switches this scales to k*n (the paper's bound).
	LinkFailuresHandled int

	// BackupRatio is n/(k/2).
	BackupRatio float64
	// SwitchFailureRate is the paper's 0.01% working figure.
	SwitchFailureRate float64
	// PGroupOverflow is the probability a failure group sees more than n
	// concurrent failures under independent failures at
	// SwitchFailureRate.
	PGroupOverflow float64
}

// Capacity measures Section 5.1's capacity claims on a live network.
func Capacity(k, n int) (*CapacityResult, error) {
	sys, err := New(Config{K: k, N: n})
	if err != nil {
		return nil, err
	}
	net, ctl := sys.Network, sys.Controller
	res := &CapacityResult{
		K: k, N: n, GroupSize: k / 2,
		BackupRatio:       net.BackupRatio(),
		SwitchFailureRate: failure.SwitchFailureRate,
		PGroupOverflow:    failure.BinomialTail(k/2, n, failure.SwitchFailureRate),
	}

	// Measure switch-failure tolerance: fail switches in one aggregation
	// group until recovery is refused.
	g := net.AggGroup(0)
	for slot := 0; slot < k/2; slot++ {
		victim := g.Slots()[slot]
		net.InjectNodeFailure(victim)
		if _, err := ctl.RecoverNode(victim, time.Duration(slot)*time.Millisecond); err != nil {
			if errors.Is(err, sbnet.ErrNoBackup) {
				break
			}
			return nil, err
		}
		res.ToleratedSwitchFailures++
	}
	if err := net.CheckInvariants(); err != nil {
		return nil, err
	}

	// Measure link-failure absorption on a fresh system: one faulty agg
	// switch produces link failures on all its k/2 up-ports one after
	// another; diagnosis exonerates the healthy core ends each time, so
	// only one backup (per group involved) is consumed in steady state.
	sys2, err := New(Config{K: k, N: n})
	if err != nil {
		return nil, err
	}
	net2, ctl2 := sys2.Network, sys2.Controller
	faulty := net2.AggGroup(1).Slots()[0]
	handled := 0
	for t := 0; t < k/2; t++ {
		// The faulty agg's up-port t fails; peer is core slot 0 of
		// core group t.
		if err := net2.InjectPortFailure(faulty, k/2+t); err != nil {
			return nil, err
		}
		peer := net2.CoreGroup(t).Slots()[0]
		_, err := ctl2.ReportLinkFailure(
			controller.EndPoint{Switch: faulty, Port: k/2 + t},
			controller.EndPoint{Switch: peer, Port: 1},
			time.Duration(t)*time.Millisecond,
		)
		if err != nil && t == 0 {
			return nil, err
		}
		// After the first failure the faulty switch is already
		// offline; subsequent reports only replace the healthy peer,
		// which diagnosis then returns to the pool.
		if _, err := ctl2.RunDiagnosis(); err != nil {
			return nil, err
		}
		handled++
	}
	res.LinkFailuresHandled = handled
	if err := net2.CheckInvariants(); err != nil {
		return nil, err
	}
	return res, nil
}

// LatencyRow is one recovery-latency comparison entry (Section 5.3).
type LatencyRow struct {
	Scheme    string
	Detection time.Duration
	Comm      time.Duration
	Reconfig  time.Duration // circuit reset, or SDN rule update for rerouting
	Total     time.Duration
}

// RecoveryLatency compares ShareBackup's recovery latency under both
// circuit-switch technologies against F10/Aspen-class local rerouting, using
// the paper's constants: a shared probing interval, sub-millisecond
// controller communication, 70 ns / 40 µs circuit resets, and a ~1 ms SDN
// rule update for rerouting.
func RecoveryLatency(k int) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, tech := range []Technology{Crosspoint, MEMS2D} {
		sys, err := New(Config{K: k, N: 1, Tech: tech})
		if err != nil {
			return nil, err
		}
		victim := sys.Network.AggGroup(0).Slots()[0]
		sys.Controller.Heartbeat(victim, 0)
		probe := sys.Controller.Config().ProbeInterval
		rec, err := sys.FailNode(victim, probe)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LatencyRow{
			Scheme:    fmt.Sprintf("ShareBackup (%v)", tech),
			Detection: rec.Detection,
			Comm:      rec.Comm,
			Reconfig:  rec.Reconfig,
			Total:     rec.Total(),
		})
	}
	sys, err := New(Config{K: k, N: 1})
	if err != nil {
		return nil, err
	}
	probe := sys.Controller.Config().ProbeInterval
	rows = append(rows, LatencyRow{
		Scheme:    "F10/Aspen local rerouting",
		Detection: probe,
		Reconfig:  controller.SDNRuleUpdateLatency,
		Total:     sys.Controller.RerouteRecoveryLatency(),
	})
	return rows, nil
}

// TableSizeRow verifies Section 4.3's combined-table arithmetic for one k.
type TableSizeRow struct {
	K        int
	Hosts    int // k^3/4
	Inbound  int // k/2
	Outbound int // k^2/4
	Total    int
}

// TableSizes builds the VLAN-combined failure-group tables across scales.
// For k=64 the total is 1056 entries, within commodity TCAM capacity.
func TableSizes(ks []int) ([]TableSizeRow, error) {
	var rows []TableSizeRow
	for _, k := range ks {
		vt, err := routing.BuildVLANTable(k, 0)
		if err != nil {
			return nil, err
		}
		out := 0
		for _, t := range vt.Outbound {
			out += t.Size()
		}
		rows = append(rows, TableSizeRow{
			K:        k,
			Hosts:    k * k * k / 4,
			Inbound:  vt.Inbound.Size(),
			Outbound: out,
			Total:    vt.Size(),
		})
	}
	return rows, nil
}

// Table2 renders the cost comparison at one scale under both price points.
func Table2(k, n int) (*metrics.Table, error) {
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Table 2 — additional cost over fat-tree (k=%d, n=%d)", k, n),
		Headers: []string{"architecture", "prices", "circuit$", "switch$", "cable$", "extra$", "rel. to fat-tree"},
	}
	for _, p := range []cost.Prices{cost.EDC, cost.ODC} {
		rows, err := cost.Compare(k, n, p)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			tbl.AddRow(r.Architecture, p.Name, r.Extra.CircuitPorts, r.Extra.SwitchPorts,
				r.Extra.Cables, r.Extra.Total(), r.Relative)
		}
	}
	return tbl, nil
}

// Fig5 sweeps network scale and returns one relative-additional-cost series
// per (architecture, price point), the curves of Figure 5.
func Fig5(ks []int, ns []int) ([]*metrics.Series, error) {
	if len(ks) == 0 {
		ks = []int{8, 16, 24, 32, 40, 48, 56, 64}
	}
	if len(ns) == 0 {
		ns = []int{1, 4}
	}
	var out []*metrics.Series
	for _, p := range []cost.Prices{cost.EDC, cost.ODC} {
		for _, n := range ns {
			s := &metrics.Series{Name: fmt.Sprintf("ShareBackup(n=%d) %s", n, p.Name), XLabel: "k"}
			for _, k := range ks {
				ex, err := cost.ShareBackupExtra(k, n, p)
				if err != nil {
					return nil, err
				}
				rel, err := cost.Relative(ex, k, p)
				if err != nil {
					return nil, err
				}
				s.Add(float64(k), rel)
			}
			out = append(out, s)
		}
		aspen := &metrics.Series{Name: "AspenTree " + p.Name, XLabel: "k"}
		oneone := &metrics.Series{Name: "1:1Backup " + p.Name, XLabel: "k"}
		for _, k := range ks {
			ax, err := cost.AspenExtra(k, p)
			if err != nil {
				return nil, err
			}
			rel, err := cost.Relative(ax, k, p)
			if err != nil {
				return nil, err
			}
			aspen.Add(float64(k), rel)
			ox, err := cost.OneToOneExtra(k, p)
			if err != nil {
				return nil, err
			}
			rel, err = cost.Relative(ox, k, p)
			if err != nil {
				return nil, err
			}
			oneone.Add(float64(k), rel)
		}
		out = append(out, aspen, oneone)
	}
	return out, nil
}
