# Quality gates for the ShareBackup reproduction. `make check` is what CI
# (and ISSUE reviewers) run: vet, build, full test suite, then the race
# detector on the packages with real concurrency. `make check-race` runs the
# whole suite under the race detector (slower; CI runs it as its own job).

GO ?= go

.PHONY: check check-race vet build test race soak-failover soak-fleet bench bench-smoke tools

check: vet build test race

check-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ctlnet/... ./internal/ctlplane/... ./internal/obs/... ./internal/sweep/... ./internal/fluid/... ./internal/topo/... ./internal/routing/...
	# The parallel fill path's determinism proof, explicitly under the race
	# detector: worker pools exchanging component fills must be bit-identical
	# AND data-race-free.
	$(GO) test -race -run 'TestDifferentialParallelWorkers' ./internal/fluid/

# Leader-failover soak: the cluster emulation's kill-the-leader-mid-storm
# and quorum-loss drills, repeated under the race detector. Election timing
# is randomized, so repetition is the point — one pass only samples one
# timeout draw.
soak-failover:
	$(GO) test -race -count 8 -run 'TestCluster|TestElectionSafety' ./internal/ctlnet/... ./internal/ctlplane/...

# Fleet-scale keep-alive soak: 1000 grouped agents hammer one server's
# multiplexed pollers under the race detector, and the test asserts the
# server's goroutine count stays bounded by shards+pollers, not fleet size.
soak-fleet:
	$(GO) test -race -run 'TestFleetSoak' -v ./internal/ctlnet/

# Recovery-path microbenchmarks; instrumentation must stay free when no
# event sink is attached, so watch these against the seed numbers.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Check-only trajectory gate at CI scale: reduced recovery trials, smoke
# storm comparison (reported, not gated), no BENCH_*.json rewrite.
bench-smoke:
	$(GO) run ./cmd/sbbench -no-write -trials 8 -smoke

tools:
	$(GO) build ./cmd/...
