# Quality gates for the ShareBackup reproduction. `make check` is what CI
# (and ISSUE reviewers) run: vet, build, full test suite, then the race
# detector on the two packages with real concurrency — the TCP control plane
# and the event bus it publishes on.

GO ?= go

.PHONY: check vet build test race bench tools

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ctlnet/... ./internal/obs/...

# Recovery-path microbenchmarks; instrumentation must stay free when no
# event sink is attached, so watch these against the seed numbers.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

tools:
	$(GO) build ./cmd/...
